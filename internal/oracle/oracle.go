// Package oracle is the independent bitstream-level verification judge: it
// re-extracts the complete routed netlist from raw configuration frames
// only, and checks the router's §2.4–2.5 guarantees (contention protection,
// trace completeness, clean rip-up) without ever consulting the router's
// own bookkeeping.
//
// Independence is the point. The router, the device layer, and the service
// mirrors all share one in-memory routing state; a bug that corrupts that
// state corrupts every check built on it. The oracle instead treats the
// configuration stream as the ground truth it is on real hardware: it
// parses the stream header itself, derives its own PIP bit-position table
// from the architecture description (deliberately duplicating the device
// layer's enumeration — the bit layout is the file-format contract between
// the two, and any drift surfaces as an extraction failure), and uses a
// *blank* device solely as a geometry/legality rules engine (Canon,
// TapAllowedAt, DriveAllowedAt are pure functions of the architecture and
// array size). No routing state flows in.
//
// On top of extraction the oracle offers four verdicts:
//
//   - Check: structural invariants of the extracted netlist — no track has
//     two drivers, no PIP is illegal at its tile, no driven routing track
//     dangles without fanout (a stale antenna), no net roots at a non-source
//     resource, no driven track is unreachable from every root (a loop).
//   - VerifyClaims: every Connection the router claims live is physically
//     continuous from its source pin to every sink pin, frame bits only.
//   - UncoveredRoots: nets present in the frames that no claim accounts for
//     (phantom nets left behind by buggy partial failures).
//   - Diff: a PIP-for-PIP structured comparison of two extracted netlists,
//     for boards claimed equivalent (daemon truth vs thin client mirror,
//     cache-on vs cache-off).
package oracle

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/device"
)

// syncWord is the configuration stream magic. The oracle parses the header
// itself rather than trusting any device-layer accessor: the stream is the
// contract.
const syncWord = 0xAA995566

// Pin is the oracle's own endpoint type: a wire reference at a tile. It
// mirrors core.Pin's fields without importing the router.
type Pin struct {
	Row, Col int
	W        arch.Wire
}

// Claim is one net the system under test claims to have routed: a source
// pin and the sink pins it should reach. Claims are the only information
// that crosses from the router into the oracle, and they are endpoint-level
// only — the oracle re-derives all paths from frames.
type Claim struct {
	Source Pin
	Sinks  []Pin
}

// ViolationKind classifies an oracle finding.
type ViolationKind uint8

// Violation kinds.
const (
	// DoubleDriver: a bidirectional resource has two drivers — the exact
	// contention §3.4's protection exists to prevent.
	DoubleDriver ViolationKind = iota + 1
	// IllegalPIP: a configuration bit asserts a PIP that is illegal at its
	// tile (nonexistent resource, forbidden tap or drive position).
	IllegalPIP
	// Antenna: a routing track is driven but drives nothing and is not a
	// sink pin — a stale stub an unroute or rip-up left behind.
	Antenna
	// OrphanRoot: a net's root track is not a signal source (output pin,
	// global clock, input pad, BRAM output).
	OrphanRoot
	// Loop: a driven track is unreachable from every net root — only a
	// routing cycle disconnected from all sources produces this.
	Loop
	// Discontinuity: a claimed connection is not physically continuous
	// from its source to a claimed sink in the frames.
	Discontinuity
	// Phantom: frames hold a net rooted at a track no claim accounts for.
	Phantom
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case DoubleDriver:
		return "double-driver"
	case IllegalPIP:
		return "illegal-pip"
	case Antenna:
		return "antenna"
	case OrphanRoot:
		return "orphan-root"
	case Loop:
		return "loop"
	case Discontinuity:
		return "discontinuity"
	case Phantom:
		return "phantom-net"
	default:
		return "unknown"
	}
}

// Violation is one oracle finding, anchored to the PIP and/or track it
// concerns.
type Violation struct {
	Kind   ViolationKind
	PIP    device.PIP   // offending PIP, when one is implicated
	Track  device.Track // offending track, when one is implicated
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// VerifyError aggregates every violation of one audit into an error.
type VerifyError struct {
	Violations []Violation
}

// Error lists the violations, most severe classes first (the order they
// were collected).
func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %d violation(s):", len(e.Violations))
	for i, v := range e.Violations {
		if i >= 8 {
			fmt.Fprintf(&b, " ... and %d more", len(e.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  [%d] %s", i+1, v)
	}
	return b.String()
}

// Decoder holds the oracle's independently derived per-tile bit layout for
// one architecture. The pair enumeration must match the device layer's
// bit-for-bit — both walk every wire's local fanout in wire order, skipping
// duplicates — because that enumeration *is* the configuration file format.
// The Extract path cross-checks the derived bytes-per-tile against the
// stream header, so silent drift between the two is impossible.
type Decoder struct {
	A            *arch.Arch
	pairs        [][2]arch.Wire
	pairIdx      map[[2]arch.Wire]int
	lutBase      int
	ffInitBase   int
	lutUsedBase  int
	bramBase     int
	bitsPerTile  int
	bytesPerTile int
}

// Per-tile logic geometry, mirrored from the hardware model (4 LUTs of 16
// truth bits, 4 flip-flop init bits, 4 LUT-used bits, a BRAM block plus its
// used bit).
const (
	numLUTs = 4
	numFFs  = 4
	lutBits = 16
)

// NewDecoder derives the bit layout for an architecture.
func NewDecoder(a *arch.Arch) *Decoder {
	d := &Decoder{A: a, pairIdx: make(map[[2]arch.Wire]int)}
	for from := arch.Wire(0); from < arch.Wire(a.WireCount()); from++ {
		for _, to := range a.LocalFanout(from) {
			key := [2]arch.Wire{from, to}
			if _, dup := d.pairIdx[key]; dup {
				continue
			}
			d.pairIdx[key] = len(d.pairs)
			d.pairs = append(d.pairs, key)
		}
	}
	d.lutBase = len(d.pairs)
	d.ffInitBase = d.lutBase + numLUTs*lutBits
	d.lutUsedBase = d.ffInitBase + numFFs
	d.bramBase = d.lutUsedBase + numLUTs
	d.bitsPerTile = d.bramBase + arch.BRAMWords*arch.BRAMWidth + 1
	d.bytesPerTile = (d.bitsPerTile + 7) / 8
	return d
}

// PairBit returns the per-tile bit position of the PIP (from -> to), used
// by tests that hand-craft corrupt streams.
func (d *Decoder) PairBit(from, to arch.Wire) (int, bool) {
	i, ok := d.pairIdx[[2]arch.Wire{from, to}]
	return i, ok
}

// PairAt returns the (from, to) wires of per-tile PIP bit i.
func (d *Decoder) PairAt(i int) (from, to arch.Wire, ok bool) {
	if i < 0 || i >= len(d.pairs) {
		return 0, 0, false
	}
	return d.pairs[i][0], d.pairs[i][1], true
}

// PairCount returns the number of PIP configuration bits per tile.
func (d *Decoder) PairCount() int { return len(d.pairs) }

// BytesPerTile returns the derived tile width in bytes — the value a valid
// stream header for this architecture must carry.
func (d *Decoder) BytesPerTile() int { return d.bytesPerTile }

// ParseHeader reads the 16-byte configuration stream header: sync word,
// then rows, cols and bytes-per-tile, all big-endian u32.
func ParseHeader(stream []byte) (rows, cols, bytesPerTile int, err error) {
	if len(stream) < 16 {
		return 0, 0, 0, fmt.Errorf("oracle: stream too short for a header (%d bytes)", len(stream))
	}
	if binary.BigEndian.Uint32(stream[0:4]) != syncWord {
		return 0, 0, 0, fmt.Errorf("oracle: missing sync word")
	}
	rows = int(binary.BigEndian.Uint32(stream[4:8]))
	cols = int(binary.BigEndian.Uint32(stream[8:12]))
	bytesPerTile = int(binary.BigEndian.Uint32(stream[12:16]))
	if rows <= 0 || cols <= 0 || bytesPerTile <= 0 {
		return 0, 0, 0, fmt.Errorf("oracle: degenerate geometry %dx%dx%d in header", rows, cols, bytesPerTile)
	}
	return rows, cols, bytesPerTile, nil
}

// Netlist is the routed netlist extracted from raw frames: every asserted
// PIP, the driver/fanout relations over canonical tracks, and the
// violations found during decode. Rules is a blank device of the stream's
// geometry used purely as the canonicalization and legality engine; it
// carries no routing state.
type Netlist struct {
	A          *arch.Arch
	Rows, Cols int
	Rules      *device.Device
	PIPs       []device.PIP // every decoded legal PIP, tile-major order
	Extraction []Violation  // violations found while decoding

	driver map[device.Key]device.PIP
	fanout map[device.Key][]device.PIP
}

// Extract decodes a full configuration stream into a Netlist. The stream's
// own CRC and framing are verified while loading (a corrupted frame
// surfaces here); the header geometry is cross-checked against the layout
// the oracle derives from the architecture.
func Extract(a *arch.Arch, stream []byte) (*Netlist, error) {
	rows, cols, bpt, err := ParseHeader(stream)
	if err != nil {
		return nil, err
	}
	dec := NewDecoder(a)
	if bpt != dec.bytesPerTile {
		return nil, fmt.Errorf("oracle: header says %d bytes/tile, architecture %s derives %d (layout drift?)",
			bpt, a.Name, dec.bytesPerTile)
	}
	raw, err := bitstream.New(bitstream.Layout{Rows: rows, Cols: cols, BytesPerTile: bpt})
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	if _, err := raw.ApplyConfig(stream); err != nil {
		return nil, fmt.Errorf("oracle: corrupt stream: %w", err)
	}
	rules, err := device.New(a, rows, cols)
	if err != nil {
		return nil, fmt.Errorf("oracle: building rules engine: %w", err)
	}
	n := &Netlist{
		A: a, Rows: rows, Cols: cols, Rules: rules,
		driver: make(map[device.Key]device.PIP),
		fanout: make(map[device.Key][]device.PIP),
	}
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			for base := 0; base < len(dec.pairs); base += 64 {
				width := 64
				if base+width > len(dec.pairs) {
					width = len(dec.pairs) - base
				}
				word, err := raw.GetBits(row, col, base, width)
				if err != nil {
					return nil, fmt.Errorf("oracle: reading tile (%d,%d): %w", row, col, err)
				}
				for word != 0 {
					i := bits.TrailingZeros64(word)
					word &^= 1 << i
					pair := dec.pairs[base+i]
					n.admitPIP(device.PIP{Row: row, Col: col, From: pair[0], To: pair[1]})
				}
			}
		}
	}
	return n, nil
}

// admitPIP legality-checks one decoded PIP and registers it in the
// driver/fanout relations, collecting violations instead of aborting so an
// audit reports everything wrong with a board at once.
func (n *Netlist) admitPIP(p device.PIP) {
	at := device.Coord{Row: p.Row, Col: p.Col}
	from, okF := n.Rules.CanonOK(p.Row, p.Col, p.From)
	to, okT := n.Rules.CanonOK(p.Row, p.Col, p.To)
	switch {
	case !okF || !okT:
		n.Extraction = append(n.Extraction, Violation{Kind: IllegalPIP, PIP: p,
			Detail: fmt.Sprintf("PIP %s references a resource that does not exist on a %dx%d array",
				n.Rules.PIPString(p), n.Rows, n.Cols)})
		return
	case !n.A.PIPLegalLocal(p.From, p.To):
		n.Extraction = append(n.Extraction, Violation{Kind: IllegalPIP, PIP: p,
			Detail: fmt.Sprintf("no PIP %s in architecture %s", n.Rules.PIPString(p), n.A.Name)})
		return
	case !n.Rules.TapAllowedAt(from, at):
		n.Extraction = append(n.Extraction, Violation{Kind: IllegalPIP, PIP: p, Track: from,
			Detail: fmt.Sprintf("PIP %s taps %s at a forbidden tile", n.Rules.PIPString(p), n.A.WireName(from.W))})
		return
	case !n.Rules.DriveAllowedAt(to, at):
		n.Extraction = append(n.Extraction, Violation{Kind: IllegalPIP, PIP: p, Track: to,
			Detail: fmt.Sprintf("PIP %s drives %s at a forbidden tile", n.Rules.PIPString(p), n.A.WireName(to.W))})
		return
	}
	if exist, dup := n.driver[to.Key()]; dup {
		n.Extraction = append(n.Extraction, Violation{Kind: DoubleDriver, PIP: p, Track: to,
			Detail: fmt.Sprintf("%s at (%d,%d) driven by both %s and %s",
				n.A.WireName(to.W), to.Row, to.Col, n.Rules.PIPString(exist), n.Rules.PIPString(p))})
		return
	}
	n.driver[to.Key()] = p
	n.fanout[from.Key()] = append(n.fanout[from.Key()], p)
	n.PIPs = append(n.PIPs, p)
}

// sourceKind reports whether a wire kind is a legitimate net root: a
// resource that generates a signal rather than carrying one.
func sourceKind(k arch.Kind) bool {
	switch k {
	case arch.KindOutPin, arch.KindGClk, arch.KindIOBIn, arch.KindBRAMOut:
		return true
	}
	return false
}

// sinkKind reports whether a wire kind terminates a net.
func sinkKind(k arch.Kind) bool {
	switch k {
	case arch.KindInput, arch.KindCtrl, arch.KindIOBOut, arch.KindBRAMIn, arch.KindBRAMClk:
		return true
	}
	return false
}

// Roots returns the canonical root track of every net in the frames: a
// track that sources PIPs but is driven by none, in deterministic order.
func (n *Netlist) Roots() []device.Track {
	var roots []device.Track
	for key := range n.fanout {
		if _, driven := n.driver[key]; !driven {
			roots = append(roots, device.TrackOfKey(key))
		}
	}
	sort.Slice(roots, func(i, j int) bool { return lessTrack(roots[i], roots[j]) })
	return roots
}

func lessTrack(a, b device.Track) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.W < b.W
}

// Check verifies the structural invariants of the extracted netlist and
// returns every violation found: the extraction findings (illegal PIPs,
// double drivers) plus antennas, orphan roots, and loops.
func (n *Netlist) Check() []Violation {
	out := append([]Violation(nil), n.Extraction...)

	// Deterministic track order for the sweeps below.
	keys := make([]device.Track, 0, len(n.driver))
	for key := range n.driver {
		keys = append(keys, device.TrackOfKey(key))
	}
	sort.Slice(keys, func(i, j int) bool { return lessTrack(keys[i], keys[j]) })

	// Antennas: a driven track that drives nothing must be a sink pin.
	for _, t := range keys {
		k := n.A.ClassOf(t.W).Kind
		if sinkKind(k) {
			continue
		}
		if len(n.fanout[t.Key()]) == 0 {
			out = append(out, Violation{Kind: Antenna, PIP: n.driver[t.Key()], Track: t,
				Detail: fmt.Sprintf("%s at (%d,%d) is driven but drives nothing (stale antenna)",
					n.A.WireName(t.W), t.Row, t.Col)})
		}
	}

	// Orphan roots: every net must originate at a signal source.
	reached := make(map[device.Key]bool)
	var queue []device.Track
	for _, root := range n.Roots() {
		k := n.A.ClassOf(root.W).Kind
		if !sourceKind(k) {
			out = append(out, Violation{Kind: OrphanRoot, Track: root,
				Detail: fmt.Sprintf("net roots at %s at (%d,%d), a %s, not a signal source",
					n.A.WireName(root.W), root.Row, root.Col, k)})
		}
		queue = append(queue, root)
		reached[root.Key()] = true
	}

	// Loops: walk every net from its root; a driven track no walk visits
	// can only be part of a driver cycle detached from all sources.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range n.fanout[cur.Key()] {
			t, ok := n.Rules.CanonOK(p.Row, p.Col, p.To)
			if !ok || reached[t.Key()] {
				continue
			}
			reached[t.Key()] = true
			queue = append(queue, t)
		}
	}
	for _, t := range keys {
		if !reached[t.Key()] {
			out = append(out, Violation{Kind: Loop, PIP: n.driver[t.Key()], Track: t,
				Detail: fmt.Sprintf("%s at (%d,%d) is driven but unreachable from every net root (routing cycle)",
					n.A.WireName(t.W), t.Row, t.Col)})
		}
	}
	return out
}

// reach walks the net rooted at track src and returns the set of canonical
// sink tracks it terminates at.
func (n *Netlist) reach(src device.Track) map[device.Key]bool {
	sinks := make(map[device.Key]bool)
	seen := map[device.Key]bool{src.Key(): true}
	queue := []device.Track{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range n.fanout[cur.Key()] {
			t, ok := n.Rules.CanonOK(p.Row, p.Col, p.To)
			if !ok || seen[t.Key()] {
				continue
			}
			seen[t.Key()] = true
			if sinkKind(n.A.ClassOf(t.W).Kind) {
				sinks[t.Key()] = true
				continue
			}
			queue = append(queue, t)
		}
	}
	return sinks
}

// VerifyClaims checks that every claimed connection is physically
// continuous in the frames: starting from the claim's source pin, the
// decoded PIPs must reach every claimed sink pin.
func (n *Netlist) VerifyClaims(claims []Claim) []Violation {
	var out []Violation
	for _, c := range claims {
		src, ok := n.Rules.CanonOK(c.Source.Row, c.Source.Col, c.Source.W)
		if !ok {
			out = append(out, Violation{Kind: Discontinuity,
				Detail: fmt.Sprintf("claimed source %s at (%d,%d) names no resource",
					n.A.WireName(c.Source.W), c.Source.Row, c.Source.Col)})
			continue
		}
		sinks := n.reach(src)
		for _, sp := range c.Sinks {
			st, ok := n.Rules.CanonOK(sp.Row, sp.Col, sp.W)
			if !ok {
				out = append(out, Violation{Kind: Discontinuity,
					Detail: fmt.Sprintf("claimed sink %s at (%d,%d) names no resource",
						n.A.WireName(sp.W), sp.Row, sp.Col)})
				continue
			}
			if !sinks[st.Key()] {
				out = append(out, Violation{Kind: Discontinuity, Track: st,
					Detail: fmt.Sprintf("claimed connection %s(%d,%d) -> %s(%d,%d) is not continuous in the frames",
						n.A.WireName(c.Source.W), c.Source.Row, c.Source.Col,
						n.A.WireName(sp.W), sp.Row, sp.Col)})
			}
		}
	}
	return out
}

// UncoveredRoots returns the root track of every net in the frames that no
// claim's source accounts for, in deterministic order. Global clock nets
// are exempt: clock distribution is legitimately unrecorded at the
// endpoint level. Callers that route exclusively through the recorded
// automatic calls treat a non-empty result as a phantom-net violation;
// callers that also place manual single-PIP routes (the §3.1 level-1 API)
// use it as an inventory instead.
func (n *Netlist) UncoveredRoots(claims []Claim) []device.Track {
	covered := make(map[device.Key]bool)
	for _, c := range claims {
		if t, ok := n.Rules.CanonOK(c.Source.Row, c.Source.Col, c.Source.W); ok {
			covered[t.Key()] = true
		}
	}
	var out []device.Track
	for _, root := range n.Roots() {
		if n.A.ClassOf(root.W).Kind == arch.KindGClk {
			continue
		}
		if !covered[root.Key()] {
			out = append(out, root)
		}
	}
	return out
}

// DiffEntry is one PIP present in exactly one of two compared netlists.
type DiffEntry struct {
	PIP device.PIP
	InA bool
	InB bool
}

// Diff compares two extracted netlists PIP-for-PIP and returns every
// difference in deterministic order. Boards claimed equivalent must return
// an empty diff.
func (n *Netlist) Diff(o *Netlist) []DiffEntry {
	inA := make(map[device.PIP]bool, len(n.PIPs))
	for _, p := range n.PIPs {
		inA[p] = true
	}
	inB := make(map[device.PIP]bool, len(o.PIPs))
	for _, p := range o.PIPs {
		inB[p] = true
	}
	var out []DiffEntry
	for _, p := range n.PIPs {
		if !inB[p] {
			out = append(out, DiffEntry{PIP: p, InA: true})
		}
	}
	for _, p := range o.PIPs {
		if !inA[p] {
			out = append(out, DiffEntry{PIP: p, InB: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].PIP, out[j].PIP
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// DiffStreams extracts both streams and diffs them — the one-call form for
// comparing a daemon's readback against a thin client mirror.
func DiffStreams(a *arch.Arch, streamA, streamB []byte) ([]DiffEntry, error) {
	na, err := Extract(a, streamA)
	if err != nil {
		return nil, fmt.Errorf("oracle: stream A: %w", err)
	}
	nb, err := Extract(a, streamB)
	if err != nil {
		return nil, fmt.Errorf("oracle: stream B: %w", err)
	}
	return na.Diff(nb), nil
}

// Audit is the standard full verdict: extract the stream, run the
// structural checks, and verify the claims. A nil error means the board is
// oracle-clean; otherwise the returned error is a *VerifyError listing
// every violation (or a plain error if the stream itself cannot be
// decoded). Phantom-net detection is opt-in via strictCoverage, for
// callers that guarantee every net goes through a recorded routing call.
func Audit(a *arch.Arch, stream []byte, claims []Claim, strictCoverage bool) error {
	n, err := Extract(a, stream)
	if err != nil {
		return err
	}
	viol := n.Check()
	viol = append(viol, n.VerifyClaims(claims)...)
	if strictCoverage {
		for _, root := range n.UncoveredRoots(claims) {
			viol = append(viol, Violation{Kind: Phantom, Track: root,
				Detail: fmt.Sprintf("frames hold a net rooted at %s at (%d,%d) that no claim accounts for",
					a.WireName(root.W), root.Row, root.Col)})
		}
	}
	if len(viol) > 0 {
		return &VerifyError{Violations: viol}
	}
	return nil
}
