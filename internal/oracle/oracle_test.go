package oracle

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/device"
)

// buildQuickstart routes the §3.1 worked example at the device level (the
// level-1 PIP steps from examples/quickstart) and returns the device plus
// the claim describing the net.
func buildQuickstart(t *testing.T) (*device.Device, Claim) {
	t.Helper()
	a := arch.NewVirtex()
	d, err := device.New(a, 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	steps := []device.PIP{
		{Row: 5, Col: 7, From: arch.S1YQ, To: arch.Out(1)},
		{Row: 5, Col: 7, From: arch.Out(1), To: a.Single(arch.East, 5)},
		{Row: 5, Col: 8, From: a.Single(arch.West, 5), To: a.Single(arch.North, 0)},
		{Row: 6, Col: 8, From: a.Single(arch.South, 0), To: arch.S0F3},
	}
	for _, p := range steps {
		if err := d.SetPIP(p.Row, p.Col, p.From, p.To); err != nil {
			t.Fatalf("SetPIP %v: %v", p, err)
		}
	}
	claim := Claim{
		Source: Pin{Row: 5, Col: 7, W: arch.S1YQ},
		Sinks:  []Pin{{Row: 6, Col: 8, W: arch.S0F3}},
	}
	return d, claim
}

func fullConfig(t *testing.T, d *device.Device) []byte {
	t.Helper()
	stream, err := d.FullConfig()
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

func kinds(viol []Violation) map[ViolationKind]int {
	m := make(map[ViolationKind]int)
	for _, v := range viol {
		m[v.Kind]++
	}
	return m
}

func TestExtractCleanBoard(t *testing.T) {
	d, claim := buildQuickstart(t)
	a := arch.NewVirtex()
	n, err := Extract(a, fullConfig(t, d))
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if got := len(n.PIPs); got != 4 {
		t.Fatalf("extracted %d PIPs, want 4", got)
	}
	if viol := n.Check(); len(viol) != 0 {
		t.Fatalf("Check on a clean board: %v", viol)
	}
	if viol := n.VerifyClaims([]Claim{claim}); len(viol) != 0 {
		t.Fatalf("VerifyClaims on a continuous net: %v", viol)
	}
	if roots := n.UncoveredRoots([]Claim{claim}); len(roots) != 0 {
		t.Fatalf("UncoveredRoots with a covering claim: %v", roots)
	}
	if err := Audit(a, fullConfig(t, d), []Claim{claim}, true); err != nil {
		t.Fatalf("Audit: %v", err)
	}
}

// TestCorruptedFrameCaught flips one payload byte in a valid stream; the
// CRC check must reject it and Extract must fail.
func TestCorruptedFrameCaught(t *testing.T) {
	d, _ := buildQuickstart(t)
	stream := fullConfig(t, d)
	// Flip a byte well past the 16-byte raw header, inside the CRC-covered
	// packet region.
	stream[len(stream)/2] ^= 0x40
	if _, err := Extract(arch.NewVirtex(), stream); err == nil {
		t.Fatal("Extract accepted a corrupted stream")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestDoubleDriverCaught asserts a second legal driver for an
// already-driven track directly in the raw bits (SetPIP would refuse it),
// regenerates a valid stream, and requires the oracle to flag the
// contention.
func TestDoubleDriverCaught(t *testing.T) {
	d, _ := buildQuickstart(t)
	a := arch.NewVirtex()
	dec := NewDecoder(a)

	// The quickstart net drives Single(North,0) at (5,8) via the
	// west-to-north PIP. Find a different legal driver of the same
	// canonical track at one of its tap tiles.
	victim, ok := d.CanonOK(5, 8, a.Single(arch.North, 0))
	if !ok {
		t.Fatal("victim track does not canonicalize")
	}
	var second *device.PIP
	for _, tap := range d.Taps(victim) {
		local := d.LocalName(victim, tap)
		if local == arch.Invalid {
			continue
		}
		if !d.DriveAllowedAt(victim, tap) {
			continue
		}
		for _, from := range a.LocalDrivers(local) {
			p := device.PIP{Row: tap.Row, Col: tap.Col, From: from, To: local}
			if p == (device.PIP{Row: 5, Col: 8, From: a.Single(arch.West, 5), To: a.Single(arch.North, 0)}) {
				continue
			}
			ft, ok := d.CanonOK(tap.Row, tap.Col, from)
			if !ok || !d.TapAllowedAt(ft, tap) {
				continue
			}
			second = &p
			break
		}
		if second != nil {
			break
		}
	}
	if second == nil {
		t.Fatal("no second legal driver found for the victim track")
	}

	stream := fullConfig(t, d)
	rows, cols, bpt, err := ParseHeader(stream)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bitstream.New(bitstream.Layout{Rows: rows, Cols: cols, BytesPerTile: bpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.ApplyConfig(stream); err != nil {
		t.Fatal(err)
	}
	bit, ok := dec.PairBit(second.From, second.To)
	if !ok {
		t.Fatalf("PIP %v has no configuration bit", *second)
	}
	if err := raw.SetBit(second.Row, second.Col, bit, true); err != nil {
		t.Fatal(err)
	}
	corrupt, err := raw.FullConfig()
	if err != nil {
		t.Fatal(err)
	}

	n, err := Extract(a, corrupt)
	if err != nil {
		t.Fatalf("Extract (stream is CRC-valid): %v", err)
	}
	if kinds(n.Check())[DoubleDriver] == 0 {
		t.Fatalf("oracle missed the double driver; violations: %v", n.Check())
	}
}

// TestAntennaCaught leaves a routed stub ending on a routing wire.
func TestAntennaCaught(t *testing.T) {
	a := arch.NewVirtex()
	d, err := device.New(a, 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPIP(5, 7, arch.S1YQ, arch.Out(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.SetPIP(5, 7, arch.Out(1), a.Single(arch.East, 5)); err != nil {
		t.Fatal(err)
	}
	n, err := Extract(arch.NewVirtex(), fullConfig(t, d))
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(n.Check())
	if k[Antenna] == 0 {
		t.Fatalf("oracle missed the antenna; violations: %v", n.Check())
	}
}

// TestOrphanRootCaught routes a segment whose root is a plain routing
// wire, not a signal source.
func TestOrphanRootCaught(t *testing.T) {
	a := arch.NewVirtex()
	d, err := device.New(a, 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPIP(5, 8, a.Single(arch.West, 5), a.Single(arch.North, 0)); err != nil {
		t.Fatal(err)
	}
	n, err := Extract(arch.NewVirtex(), fullConfig(t, d))
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(n.Check())
	if k[OrphanRoot] == 0 {
		t.Fatalf("oracle missed the orphan root; violations: %v", n.Check())
	}
}

// TestDiscontinuityCaught claims a sink the frames never connect.
func TestDiscontinuityCaught(t *testing.T) {
	d, claim := buildQuickstart(t)
	claim.Sinks = append(claim.Sinks, Pin{Row: 10, Col: 10, W: arch.S0F1})
	n, err := Extract(arch.NewVirtex(), fullConfig(t, d))
	if err != nil {
		t.Fatal(err)
	}
	viol := n.VerifyClaims([]Claim{claim})
	if kinds(viol)[Discontinuity] != 1 {
		t.Fatalf("want exactly one discontinuity, got %v", viol)
	}
}

// TestPhantomNetCaught audits with no claims: the routed net must surface
// as an unaccounted root.
func TestPhantomNetCaught(t *testing.T) {
	d, _ := buildQuickstart(t)
	err := Audit(arch.NewVirtex(), fullConfig(t, d), nil, true)
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("want *VerifyError, got %v", err)
	}
	if kinds(ve.Violations)[Phantom] == 0 {
		t.Fatalf("oracle missed the phantom net: %v", ve.Violations)
	}
}

// TestDiffStreams checks the structured PIP-for-PIP diff.
func TestDiffStreams(t *testing.T) {
	a := arch.NewVirtex()
	d1, _ := buildQuickstart(t)
	d2, _ := buildQuickstart(t)
	extraTo := a.LocalFanout(arch.S0YQ)[0]
	if err := d2.SetPIP(9, 9, arch.S0YQ, extraTo); err != nil {
		t.Fatal(err)
	}
	diff, err := DiffStreams(a, fullConfig(t, d1), fullConfig(t, d2))
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 {
		t.Fatalf("want 1 diff entry, got %v", diff)
	}
	e := diff[0]
	if e.InA || !e.InB {
		t.Fatalf("diff entry on the wrong side: %+v", e)
	}
	want := device.PIP{Row: 9, Col: 9, From: arch.S0YQ, To: extraTo}
	if e.PIP != want {
		t.Fatalf("diff PIP = %v, want %v", e.PIP, want)
	}
	same, err := DiffStreams(a, fullConfig(t, d1), fullConfig(t, d1))
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Fatalf("identical streams diff non-empty: %v", same)
	}
}

// TestHeaderLayoutMismatch rejects a stream whose header disagrees with
// the architecture-derived tile width.
func TestHeaderLayoutMismatch(t *testing.T) {
	d, _ := buildQuickstart(t)
	stream := fullConfig(t, d)
	// bytes-per-tile lives at header offset 12..16 (big-endian u32).
	stream[15]++
	if _, err := Extract(arch.NewVirtex(), stream); err == nil {
		t.Fatal("Extract accepted a layout-mismatched header")
	}
}
