package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/oracle"
)

var update = flag.Bool("update", false, "rewrite golden bitstreams")

// goldenConfigs is the cross-configuration grid every scenario must agree
// on byte-for-byte. Scenarios are fresh single-pass flows — no churn
// between a path being learned and replayed — so here (unlike the
// differential fuzz harness) even cache-on and cache-off boards must be
// identical, and the committed stream must not depend on worker count.
var goldenConfigs = []struct {
	name string
	opt  core.Options
}{
	{"cache-on/par-1", core.Options{RouteCache: core.CacheOn, Parallelism: 1}},
	{"cache-on/par-8", core.Options{RouteCache: core.CacheOn, Parallelism: 8}},
	{"cache-off/par-1", core.Options{RouteCache: core.CacheOff, Parallelism: 1}},
	{"cache-off/par-8", core.Options{RouteCache: core.CacheOff, Parallelism: 8}},
	// The entries above negotiate batches partitioned (PartitionAuto is the
	// zero value); these two force the single global loop — partitioning is
	// an exact decomposition, so the frames must not move.
	{"cache-on/par-8/global", core.Options{RouteCache: core.CacheOn, Parallelism: 8, Partition: core.PartitionOff}},
	{"cache-off/par-1/global", core.Options{RouteCache: core.CacheOff, Parallelism: 1, Partition: core.PartitionOff}},
}

// TestGoldenBitstreams pins every scenario's committed configuration
// stream against a checked-in golden file, across the full config grid.
// A diff means the router now emits different frames for the paper's
// worked examples — if that is intended (an algorithm change), regenerate
// with `go test ./internal/scenario -run Golden -update` and review the
// PIP-level diff the failure printed.
func TestGoldenBitstreams(t *testing.T) {
	a := arch.NewVirtex()
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			golden := filepath.Join("testdata", s.Name+".bin")
			var ref []byte
			for _, cfg := range goldenConfigs {
				stream, claims, err := s.Run(cfg.opt)
				if err != nil {
					t.Fatalf("%s under %s: %v", s.Name, cfg.name, err)
				}
				// Every configuration's board must be oracle-clean.
				// Coverage is non-strict: the template scenario routes
				// manually, which the router records no claim for.
				if err := oracle.Audit(a, stream, claims, false); err != nil {
					t.Fatalf("%s under %s not oracle-clean: %v", s.Name, cfg.name, err)
				}
				if ref == nil {
					ref = stream
					continue
				}
				if !bytes.Equal(ref, stream) {
					diff, derr := oracle.DiffStreams(a, ref, stream)
					if derr != nil {
						t.Fatalf("%s: configs diverge and diff failed: %v", s.Name, derr)
					}
					t.Fatalf("%s: %s emits different frames than %s (%d PIPs differ): %v",
						s.Name, cfg.name, goldenConfigs[0].name, len(diff), diff)
				}
			}
			if *update {
				if err := os.WriteFile(golden, ref, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", golden, len(ref))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(want, ref) {
				diff, derr := oracle.DiffStreams(a, want, ref)
				if derr != nil {
					t.Fatalf("%s: stream differs from golden and diff failed: %v", s.Name, derr)
				}
				t.Fatalf("%s: stream differs from golden by %d PIPs: %v", s.Name, len(diff), diff)
			}
		})
	}
}
