// Package scenario encodes the paper's worked examples (§3.1 routing
// levels, §3.3 replacement) as named, deterministic routing flows. Each
// scenario drives a fresh router from an empty device to a finished
// board, so its committed configuration stream is a pure function of the
// router options — which is what makes the flows usable both as golden
// bitstream regressions (internal/scenario tests) and as jverify's
// cross-configuration audit corpus.
package scenario

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cores"
	"repro/internal/device"
	"repro/internal/oracle"
)

// Scenario is one named deterministic routing flow.
type Scenario struct {
	Name string
	// Doc says which part of the paper the flow exercises.
	Doc        string
	Rows, Cols int
	Drive      func(r *core.Router) error
}

// All returns the scenario corpus in fixed order.
func All() []Scenario {
	return []Scenario{
		{
			Name: "quickstart",
			Doc:  "§3.1 level-1 single connection, routed automatically",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				return r.RouteNet(core.NewPin(5, 7, arch.S1YQ), core.NewPin(6, 8, arch.S0F3))
			},
		},
		{
			Name: "template",
			Doc:  "§3.1 level-2 explicit template route (OUTMUX,EAST1,NORTH1,CLBIN)",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				tmpl, err := core.ParseTemplate("OUTMUX,EAST1,NORTH1,CLBIN")
				if err != nil {
					return err
				}
				return r.RouteTemplate(core.NewPin(5, 7, arch.S1YQ), arch.S0F3, tmpl)
			},
		},
		{
			Name: "fanout",
			Doc:  "one source driving three sinks, shared-trunk branching",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				return r.RouteFanout(core.NewPin(4, 6, arch.S0YQ), []core.EndPoint{
					core.NewPin(4, 12, arch.S0F1),
					core.NewPin(8, 9, arch.S1G2),
					core.NewPin(10, 5, arch.S0F3),
				})
			},
		},
		{
			Name: "bus",
			Doc:  "4-bit bus as one negotiated batch",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				var srcs, dsts []core.EndPoint
				for b := 0; b < 4; b++ {
					srcs = append(srcs, core.NewPin(3+b, 4, arch.S1YQ))
					dsts = append(dsts, core.NewPin(3+b, 18, arch.S0F2))
				}
				return r.RouteBusBatch(srcs, dsts)
			},
		},
		{
			Name: "replace",
			Doc:  "§3.3 core replacement: register implemented, routed, swapped in place",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				reg, err := cores.NewRegister("scenario_reg", 4)
				if err != nil {
					return err
				}
				if err := reg.Place(7, 11); err != nil {
					return err
				}
				if err := reg.Implement(r); err != nil {
					return err
				}
				if err := r.RouteNet(reg.Ports("q")[0], core.NewPin(7, 16, arch.S0F1)); err != nil {
					return err
				}
				return cores.Replace(r, reg, 7, 11, []string{"d", "q"}, nil)
			},
		},
		{
			Name: "noc",
			Doc:  "dynamic NoC overlay: mesh build, obstacle detour, removal restores the original bytes",
			Rows: 16, Cols: 24,
			Drive: func(r *core.Router) error {
				mesh, err := cores.NewNoC(r, "noc", 2, 3, 3, 8, 3, 0)
				if err != nil {
					return err
				}
				if err := mesh.Build(); err != nil {
					return err
				}
				if _, err := mesh.AddFlow(0, 0, 1, 2); err != nil {
					return err
				}
				// Occlude the middle of the packet's XY path: the flow
				// detours over the north row, crossing nets re-route around
				// the rectangle.
				row, col := mesh.NodeSite(0, 1)
				if err := mesh.PlaceObstacle(row, col, 1, 1); err != nil {
					return err
				}
				// Removing it must put every net back on its original wires,
				// so the committed stream equals the never-obstructed build.
				return mesh.RemoveObstacle(row, col, 1, 1)
			},
		},
	}
}

// ByName finds a scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Run executes the scenario on a fresh device under the given router
// options and returns the committed configuration stream plus the
// router's live endpoint claims for oracle auditing.
func (s Scenario) Run(opt core.Options) ([]byte, []oracle.Claim, error) {
	a := arch.NewVirtex()
	dev, err := device.New(a, s.Rows, s.Cols)
	if err != nil {
		return nil, nil, err
	}
	r := core.New(dev, core.WithOptions(opt))
	if err := s.Drive(r); err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	stream, err := dev.FullConfig()
	if err != nil {
		return nil, nil, err
	}
	return stream, r.OracleClaims(), nil
}
