package server_test

import (
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/jbits"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/server/client"
)

// TestSessionUnderTransportFaults drives client sessions over a
// fault-injected transport (seeded drops, truncated frames, duplicated
// writes, delayed flushes) against a paranoid-verify server. The
// invariant: every outcome is one of two states — the client surfaces an
// error, or the ops succeeded — and in BOTH the server's board stays
// oracle-clean when re-extracted from a readback over a fresh, clean
// connection. The forbidden third state is silent success over a
// corrupted or diverged board.
func TestSessionUnderTransportFaults(t *testing.T) {
	ctx := context.Background()
	addr, srv := startDaemon(t, server.Options{ParanoidVerify: true})

	a := arch.NewVirtex()
	var faultsInjected, errorsSurfaced, completed int
	for seed := int64(1); seed <= 10; seed++ {
		devName := fmt.Sprintf("chaos%d", seed)
		if err := srv.AddDevice(devName, "virtex", 16, 24); err != nil {
			t.Fatal(err)
		}

		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fc := jbits.NewFaultConn(raw, jbits.FaultOptions{
			Seed:       seed,
			PDrop:      0.02,
			PTruncate:  0.02,
			PDuplicate: 0.02,
			PDelay:     0.10,
		})
		c := client.NewClient(fc)

		// Drive a route/unroute churn until the first transport-induced
		// error (or completion). Every individual op must report success
		// or failure — a hang would fail the test by timeout.
		opErr := func() error {
			s, err := c.Session(ctx, devName)
			if err != nil {
				return err
			}
			for i := 0; i < 12; i++ {
				src := client.Pin(core.NewPin(2+i, 3, arch.S1YQ))
				sink := client.Pin(core.NewPin(3+i, 7, arch.S0F3))
				if err := s.Route(ctx, src, sink); err != nil {
					return err
				}
				if i%3 == 2 {
					if err := s.Unroute(ctx, src); err != nil {
						return err
					}
				}
			}
			return nil
		}()
		c.Close()
		if counters := fc.Counters(); counters.Drops+counters.Truncates+counters.Duplicates > 0 {
			faultsInjected++
		}
		if opErr != nil {
			errorsSurfaced++
			t.Logf("seed %d: error surfaced: %v", seed, opErr)
		} else {
			completed++
		}

		// Whatever the faulty session saw, the server's board must be
		// oracle-clean through a fresh, clean connection.
		cc, err := client.Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := cc.Session(ctx, devName)
		if err != nil {
			t.Fatalf("seed %d: clean reconnect: %v", seed, err)
		}
		stream, err := cs.Readback(ctx)
		if err != nil {
			t.Fatalf("seed %d: readback: %v", seed, err)
		}
		if err := oracle.Audit(a, stream, nil, false); err != nil {
			t.Fatalf("seed %d: board not oracle-clean after faulty session (client err: %v): %v",
				seed, opErr, err)
		}
		// The clean session's freshly seeded mirror must agree.
		if err := cs.VerifyMirror(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cc.Close()
	}
	t.Logf("10 seeds: %d with terminal faults, %d errors surfaced, %d completed",
		faultsInjected, errorsSurfaced, completed)
	if faultsInjected == 0 {
		t.Fatal("fault schedule injected no terminal faults across 10 seeds; raise probabilities")
	}
	if errorsSurfaced == 0 {
		t.Fatal("no session surfaced an error despite injected faults")
	}
}
