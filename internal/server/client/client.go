// Package client is the Go client for the jrouted routing service: a
// connection multiplexing any number of device sessions, each keeping a
// local mirror of the server's bitstream that is updated exclusively from
// the dirty frames mutating responses push back — the thin-client side of
// the partial-reconfiguration story.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/jbits"
	"repro/internal/oracle"
	"repro/internal/server"
)

// ErrBusy is returned when the server sheds load: the target session's
// bounded queue stayed full past the enqueue timeout.
var ErrBusy = errors.New("client: server busy (session queue full)")

// Client is one connection to a jrouted daemon. Calls are synchronous
// request/response; the mutex serializes concurrent callers onto the wire.
type Client struct {
	mu     sync.Mutex
	conn   io.ReadWriteCloser
	nextID uint64
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an already-established transport. Tests use this to
// interpose fault injection (jbits.FaultConn) between the protocol layer
// and the wire.
func NewClient(conn io.ReadWriteCloser) *Client { return &Client{conn: conn} }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one framed JSON round trip.
func (c *Client) call(req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := jbits.WriteFrame(c.conn, server.OpService, payload); err != nil {
		return nil, err
	}
	op, body, err := jbits.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if op != server.OpService|jbits.RespFlag {
		return nil, fmt.Errorf("client: unexpected response opcode %#x", op)
	}
	resp := new(server.Response)
	if err := json.Unmarshal(body, resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Busy {
		return nil, ErrBusy
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

// Devices lists the device sessions the daemon hosts.
func (c *Client) Devices() ([]string, error) {
	resp, err := c.call(&server.Request{Op: "devices"})
	if err != nil {
		return nil, err
	}
	return resp.Devices, nil
}

// Stats fetches the daemon's statsz snapshot.
func (c *Client) Stats() (*server.StatsMsg, error) {
	resp, err := c.call(&server.Request{Op: "statsz"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Session is a handle on one named server device plus the local bitstream
// mirror. A Session is not safe for concurrent use; open one per worker.
type Session struct {
	c      *Client
	device string

	// Mirror is the client-side device image, advanced only by the dirty
	// frames mutating responses carry (after the initial full sync at
	// connect time). Frames are patched into the mirror's bitstream as they
	// arrive; the in-memory routing view is rebuilt lazily — call
	// SyncMirror before inspecting it.
	Mirror *device.Device

	// FramesApplied counts partial frames applied to the mirror.
	FramesApplied int

	stale bool // bits newer than Mirror's in-memory routing state
}

// SyncMirror rebuilds the mirror's in-memory routing and logic state from
// the accumulated bitstream patches. It is a no-op when already in sync,
// so callers can invoke it before every inspection and pay the full
// reconstruction only once per burst of pushed frames.
func (s *Session) SyncMirror() error {
	if !s.stale {
		return nil
	}
	if err := s.Mirror.RebuildFromBits(); err != nil {
		return fmt.Errorf("client: rebuilding mirror state: %w", err)
	}
	s.stale = false
	return nil
}

// Session opens a session on a named device: a connect round trip seeds
// the local mirror with the server's full configuration.
func (c *Client) Session(deviceName string) (*Session, error) {
	resp, err := c.call(&server.Request{Op: "connect", Session: deviceName})
	if err != nil {
		return nil, err
	}
	var a *arch.Arch
	switch resp.Arch {
	case "", "virtex":
		a = arch.NewVirtex()
	case "kestrel":
		a = arch.NewKestrel()
	default:
		return nil, fmt.Errorf("client: unknown architecture %q", resp.Arch)
	}
	mirror, err := device.New(a, resp.Rows, resp.Cols)
	if err != nil {
		return nil, err
	}
	if err := mirror.ApplyConfig(resp.Config); err != nil {
		return nil, fmt.Errorf("client: seeding mirror: %w", err)
	}
	mirror.ClearDirty()
	return &Session{c: c, device: deviceName, Mirror: mirror}, nil
}

// Device returns the session's device name.
func (s *Session) Device() string { return s.device }

// VerifyMirror re-extracts the mirror's accumulated configuration through
// the bitstream oracle and checks the structural routing invariants (no
// double drivers, no antennas, no orphan roots, no loops). It validates
// the frames themselves — the mirror's in-memory routing view is not
// consulted and need not be synced.
func (s *Session) VerifyMirror() error {
	stream, err := s.Mirror.FullConfig()
	if err != nil {
		return fmt.Errorf("client: verify mirror: %w", err)
	}
	if err := oracle.Audit(s.Mirror.A, stream, nil, false); err != nil {
		return fmt.Errorf("client: verify mirror: %w", err)
	}
	return nil
}

// do runs one op against the session, applying any pushed dirty frames to
// the mirror.
func (s *Session) do(req *server.Request) (*server.Response, error) {
	req.Session = s.device
	resp, err := s.c.call(req)
	if err != nil {
		return nil, err
	}
	if len(resp.Frames) > 0 {
		if _, err := s.Mirror.ApplyFramesRaw(resp.Frames); err != nil {
			return nil, fmt.Errorf("client: applying pushed frames: %w", err)
		}
		s.Mirror.ClearDirty()
		s.FramesApplied += resp.FrameN
		s.stale = true
	}
	return resp, nil
}

// Pin converts a core.Pin to its wire form.
func Pin(p core.Pin) server.EndPointMsg {
	return server.EndPointMsg{Pin: &server.PinMsg{Row: p.Row, Col: p.Col, Wire: int(p.W)}}
}

// PortRef names a port of a server-side core instance.
func PortRef(coreName, group string, index int) server.EndPointMsg {
	return server.EndPointMsg{Port: &server.PortRefMsg{Core: coreName, Group: group, Index: index}}
}

// Route connects source to one or more sinks (RouteNet / RouteFanout).
func (s *Session) Route(source server.EndPointMsg, sinks ...server.EndPointMsg) error {
	_, err := s.do(&server.Request{Op: "route", Source: &source, Sinks: sinks})
	return err
}

// RouteBus routes width-aligned buses with the greedy sequential router.
func (s *Session) RouteBus(sources, sinks []server.EndPointMsg) error {
	_, err := s.do(&server.Request{Op: "bus", Sources: sources, Sinks: sinks})
	return err
}

// RouteBusBatch routes a bus with the negotiated batch router.
func (s *Session) RouteBusBatch(sources, sinks []server.EndPointMsg) error {
	_, err := s.do(&server.Request{Op: "bus_batch", Sources: sources, Sinks: sinks})
	return err
}

// RouteBatch routes a set of nets together under negotiated congestion.
func (s *Session) RouteBatch(nets []server.NetMsg) error {
	_, err := s.do(&server.Request{Op: "batch", Nets: nets})
	return err
}

// Unroute removes the net sourced at the endpoint.
func (s *Session) Unroute(source server.EndPointMsg) error {
	_, err := s.do(&server.Request{Op: "unroute", Source: &source})
	return err
}

// ReverseUnroute removes only the branch feeding one sink.
func (s *Session) ReverseUnroute(sink server.EndPointMsg) error {
	_, err := s.do(&server.Request{Op: "reverse_unroute", Source: &sink})
	return err
}

// Trace returns the net driven by the source endpoint.
func (s *Session) Trace(source server.EndPointMsg) (*server.NetMsg, error) {
	resp, err := s.do(&server.Request{Op: "trace", Source: &source})
	if err != nil {
		return nil, err
	}
	return resp.Net, nil
}

// ReverseTrace returns the net branch feeding the sink endpoint.
func (s *Session) ReverseTrace(sink server.EndPointMsg) (*server.NetMsg, error) {
	resp, err := s.do(&server.Request{Op: "reverse_trace", Source: &sink})
	if err != nil {
		return nil, err
	}
	return resp.Net, nil
}

// NewCore instantiates and implements a library core on the session's
// device.
func (s *Session) NewCore(msg server.CoreMsg) error {
	_, err := s.do(&server.Request{Op: "core_new", Core: &msg})
	return err
}

// ReplaceCore runs the §3.3 replace flow on a named core: unroute its
// ports, remove, optionally retune (constmul K), re-place at (row,col),
// re-implement, reconnect.
func (s *Session) ReplaceCore(msg server.CoreMsg) error {
	_, err := s.do(&server.Request{Op: "core_replace", Core: &msg})
	return err
}

// Readback pulls the server's full configuration stream (the heavyweight
// alternative to the incremental mirror).
func (s *Session) Readback() ([]byte, error) {
	resp, err := s.do(&server.Request{Op: "readback"})
	if err != nil {
		return nil, err
	}
	return resp.Config, nil
}
