// Package client is the Go client for the jrouted routing service: a
// connection multiplexing any number of device sessions, each keeping a
// local mirror of the server's bitstream that is updated exclusively from
// the dirty frames mutating responses push back — the thin-client side of
// the partial-reconfiguration story.
//
// This is the v2, context-aware API: every RPC takes a context.Context.
// The context's remaining deadline is propagated to the server (bounding
// the op's wait in the session's bounded queue) and also applied to the
// transport, so a canceled or expired context abandons the wire round trip
// instead of blocking. Server-side rejections come back as typed errors:
// errors.Is(err, ErrCanceled), ErrBusy, ErrFailover, ... — see ServiceError.
//
// The client speaks protocol version 2 and opens every connection with the
// hello handshake; a pre-v2 server (which does not answer hello) or a
// version-mismatched one surfaces as ErrVersionMismatch.
//
// By default the client also offers the compact binary v3 framing in its
// hello ("binv3" capability) and switches to it when the server advertises
// it back — dirty configuration frames then travel as raw bytes into
// pooled read buffers with no JSON marshal on the wire path. Servers
// without the capability (or clients built WithBinary(false)) keep the
// framed JSON v2 exchange unmodified.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/jbits"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/server/protocol"
	v3 "repro/internal/server/protocol/v3"
)

// Sentinel errors for the structured codes v2 responses carry. Match with
// errors.Is; the full server message is in the wrapping ServiceError.
var (
	// ErrBusy: backpressure — the session's bounded queue stayed full past
	// the enqueue timeout. Retryable.
	ErrBusy = errors.New("client: server busy (session queue full)")
	// ErrCanceled: the request context was canceled while the op was
	// queued server-side; the op was rejected without executing.
	ErrCanceled = errors.New("client: request canceled")
	// ErrVersionMismatch: the server speaks a different protocol version
	// (or the hello handshake was rejected).
	ErrVersionMismatch = errors.New("client: protocol version mismatch")
	// ErrAdmission: fleet admission control rejected the session.
	ErrAdmission = errors.New("client: session rejected by admission control")
	// ErrBoardDown: the session's board is dead and no spare is left.
	ErrBoardDown = errors.New("client: board down, no spare available")
	// ErrFailover: the op raced a board death; acknowledged state is
	// preserved on the replacement board. Retryable.
	ErrFailover = errors.New("client: board failed over, retry")
	// ErrUnauthorized: the hello bearer token was missing or unknown, or
	// the op targeted another tenant's session (gateway tier).
	ErrUnauthorized = errors.New("client: unauthorized")
	// ErrQuotaExceeded: a tenant quota rejected the request — session cap
	// on connect, ops/s token bucket otherwise. Rate rejections are
	// retryable after a pause.
	ErrQuotaExceeded = errors.New("client: tenant quota exceeded")
	// ErrUnknownAlias: connect named a device-class alias no backend fleet
	// serves (gateway tier).
	ErrUnknownAlias = errors.New("client: unknown device-class alias")
)

// ServiceError is a server-side rejection carrying the structured wire
// code. It unwraps to the matching sentinel (or context.DeadlineExceeded
// for CodeDeadline), so callers branch with errors.Is.
type ServiceError struct {
	Code string // one of the protocol.Code* constants
	Msg  string // the server's human-readable error text
}

func (e *ServiceError) Error() string {
	if e.Code == "" {
		return e.Msg
	}
	return fmt.Sprintf("%s (%s)", e.Msg, e.Code)
}

func (e *ServiceError) Unwrap() error {
	switch e.Code {
	case protocol.CodeBusy:
		return ErrBusy
	case protocol.CodeCanceled:
		return ErrCanceled
	case protocol.CodeDeadline:
		return context.DeadlineExceeded
	case protocol.CodeVersion:
		return ErrVersionMismatch
	case protocol.CodeAdmission:
		return ErrAdmission
	case protocol.CodeBoardDown:
		return ErrBoardDown
	case protocol.CodeFailover:
		return ErrFailover
	case protocol.CodeUnauthorized:
		return ErrUnauthorized
	case protocol.CodeQuota:
		return ErrQuotaExceeded
	case protocol.CodeUnknownAlias:
		return ErrUnknownAlias
	}
	return nil
}

// respError converts a response's error fields to a typed error.
func respError(resp *server.Response) error {
	if resp.Busy && resp.ErrorCode == "" {
		resp.ErrorCode = protocol.CodeBusy
	}
	if resp.Err == "" && !resp.Busy {
		return nil
	}
	msg := resp.Err
	if msg == "" {
		msg = "client: server busy (session queue full)"
	}
	return &ServiceError{Code: resp.ErrorCode, Msg: msg}
}

// Client is one connection to a jrouted daemon. Calls are synchronous
// request/response; the mutex serializes concurrent callers onto the wire.
type Client struct {
	mu      sync.Mutex
	conn    io.ReadWriteCloser
	nextID  uint64
	helloed bool
	caps    []string

	wantBinary bool   // offer the v3 framing in hello
	binary     bool   // negotiated: connection speaks v3 after hello
	token      string // bearer token sent in hello (gateway tenants)

	hdr  [v3.HeaderSize]byte // reused v3 header scratch
	wbuf []byte              // reused v3 request-encode buffer
}

// Option configures a Client before its handshake.
type Option func(*Client)

// WithBinary controls whether the client offers the binary v3 framing in
// its hello (default true). WithBinary(false) pins the connection to
// framed JSON v2 regardless of what the server advertises.
func WithBinary(on bool) Option { return func(c *Client) { c.wantBinary = on } }

// WithToken sets the bearer token the hello handshake presents. Gateways
// resolve it to a tenant; servers without an authenticator ignore it.
func WithToken(tok string) Option { return func(c *Client) { c.token = tok } }

// Dial connects to a daemon and performs the protocol handshake.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, opts...)
	if err := c.Hello(ctx); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an already-established transport. Tests use this to
// interpose fault injection (jbits.FaultConn) between the protocol layer
// and the wire. The hello handshake runs lazily before the first call (or
// eagerly via Hello).
func NewClient(conn io.ReadWriteCloser, opts ...Option) *Client {
	c := &Client{conn: conn, wantBinary: true}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Binary reports whether the connection negotiated the binary v3 framing.
// Meaningful once the hello handshake has run.
func (c *Client) Binary() bool { return c.binary }

// payloadPool recycles v3 response-payload buffers between round trips.
// A buffer travels with the response it backs (blob fields alias it) and
// returns to the pool once the caller has consumed them.
var payloadPool sync.Pool

func takePayload() []byte {
	if p, _ := payloadPool.Get().(*[]byte); p != nil {
		return *p
	}
	return nil
}

func putPayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Hello performs the version handshake explicitly and records the server's
// capability flags.
func (c *Client) Hello(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.helloLocked(ctx)
}

func (c *Client) helloLocked(ctx context.Context) error {
	if c.helloed {
		return nil
	}
	hello := &server.HelloMsg{Version: protocol.Version, Token: c.token}
	if c.wantBinary {
		// Offer the binary switch; a v2-only server ignores unknown caps.
		hello.Caps = append(hello.Caps, protocol.CapBinV3)
	}
	resp, buf, err := c.roundTrip(ctx, &server.Request{Op: "hello", Hello: hello})
	putPayload(buf) // hello is always JSON; buf is nil, recycle is a no-op
	if err != nil {
		return err
	}
	if err := respError(resp); err != nil {
		return err
	}
	if resp.Hello == nil {
		return &ServiceError{Code: protocol.CodeVersion,
			Msg: "client: server answered hello without a version"}
	}
	if resp.Hello.Version != protocol.Version {
		return &ServiceError{Code: protocol.CodeVersion,
			Msg: fmt.Sprintf("client: server speaks protocol v%d, client speaks v%d",
				resp.Hello.Version, protocol.Version)}
	}
	c.helloed = true
	c.caps = resp.Hello.Caps
	if c.wantBinary && c.HasCap(protocol.CapBinV3) {
		// Both sides committed: every frame after this response is v3.
		c.binary = true
	}
	return nil
}

// Caps returns the capability flags the server advertised in its hello
// response ("fleet", "paranoid"). Empty until the handshake has run.
func (c *Client) Caps() []string { return append([]string(nil), c.caps...) }

// HasCap reports whether the server advertised a capability.
func (c *Client) HasCap(cap string) bool {
	for _, have := range c.caps {
		if have == cap {
			return true
		}
	}
	return false
}

// call performs one round trip for ops whose response carries no blob
// (the payload buffer is recycled before the response is returned).
// Responses with Config or Frames must go through callBuf instead.
func (c *Client) call(ctx context.Context, req *server.Request) (*server.Response, error) {
	resp, buf, err := c.callBuf(ctx, req)
	putPayload(buf)
	return resp, err
}

// callBuf performs one round trip, handshaking first if needed. On the
// binary framing the returned buffer backs the response's blob fields
// (Config, Frames); the caller must consume them and then hand the buffer
// back with putPayload. On JSON (and on error) the buffer is nil.
func (c *Client) callBuf(ctx context.Context, req *server.Request) (*server.Response, []byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Op != "hello" {
		if err := c.helloLocked(ctx); err != nil {
			return nil, nil, err
		}
	}
	resp, buf, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if err := respError(resp); err != nil {
		putPayload(buf)
		return nil, nil, err
	}
	return resp, buf, nil
}

// Forward performs one raw round trip: the request travels as-is (after the
// lazy handshake) and the response comes back even when it carries a typed
// error code — the caller inspects ErrorCode itself. Blob fields (Config,
// Frames) are detached from the transport buffer, so the response owns its
// memory. This is the gateway tier's proxy primitive; transport and
// encoding failures still return an error. Forward stamps req.ID.
func (c *Client) Forward(ctx context.Context, req *server.Request) (*server.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Op != "hello" {
		if err := c.helloLocked(ctx); err != nil {
			return nil, err
		}
	}
	resp, buf, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(resp.Config) > 0 {
		resp.Config = append([]byte(nil), resp.Config...)
	}
	if len(resp.Frames) > 0 {
		resp.Frames = append([]byte(nil), resp.Frames...)
	}
	putPayload(buf)
	return resp, nil
}

// roundTrip writes one request frame and reads its response, on whichever
// framing the connection negotiated. The context deadline is propagated in
// the request (bounding the server-side queue wait) and applied to the
// transport when it supports deadlines, so an expired context abandons the
// read instead of blocking forever. Coded server rejections stay on the
// response (callBuf converts them with respError; Forward passes them
// through raw). Callers hold c.mu.
func (c *Client) roundTrip(ctx context.Context, req *server.Request) (*server.Response, []byte, error) {
	c.nextID++
	req.ID = c.nextID
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, nil, context.DeadlineExceeded
		}
		req.TimeoutMillis = int64(remaining / time.Millisecond)
		if req.TimeoutMillis == 0 {
			req.TimeoutMillis = 1
		}
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if dc, ok := c.conn.(deadliner); ok {
		dl, _ := ctx.Deadline()
		_ = dc.SetDeadline(dl) // zero time clears any previous deadline
	}
	if c.binary && req.Op != "hello" {
		return c.roundTripV3(ctx, req)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	if err := jbits.WriteFrame(c.conn, server.OpService, payload); err != nil {
		return nil, nil, wrapCtx(ctx, err)
	}
	op, body, err := jbits.ReadFrame(c.conn)
	if err != nil {
		return nil, nil, wrapCtx(ctx, err)
	}
	if op != server.OpService|jbits.RespFlag {
		jbits.RecycleFrame(body)
		return nil, nil, fmt.Errorf("client: unexpected response opcode %#x", op)
	}
	resp := new(server.Response)
	uerr := json.Unmarshal(body, resp)
	jbits.RecycleFrame(body) // JSON decoding copied everything out
	if uerr != nil {
		return nil, nil, uerr
	}
	if resp.ID != req.ID {
		return nil, nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil, nil
}

// roundTripV3 is the binary round trip: the request is encoded into the
// client's reused buffer, the response payload lands in a pooled buffer
// that travels with the response (its Config/Frames alias it). Callers
// hold c.mu.
func (c *Client) roundTripV3(ctx context.Context, req *server.Request) (*server.Response, []byte, error) {
	var err error
	c.wbuf, err = v3.AppendRequest(c.wbuf[:0], req)
	if err != nil {
		return nil, nil, err
	}
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, nil, wrapCtx(ctx, err)
	}
	h, err := v3.ReadHeader(c.conn, &c.hdr)
	if err != nil {
		return nil, nil, wrapCtx(ctx, err)
	}
	payload, err := v3.ReadPayloadInto(c.conn, h, takePayload())
	if err != nil {
		return nil, nil, wrapCtx(ctx, err)
	}
	resp := new(server.Response)
	if err := v3.DecodeResponse(h, payload, resp); err != nil {
		putPayload(payload)
		return nil, nil, err
	}
	if resp.ID != req.ID {
		putPayload(payload)
		return nil, nil, fmt.Errorf("client: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, payload, nil
}

// wrapCtx attributes a transport error to the context when the context is
// the reason the transport gave up (deadline applied to the conn fired).
func wrapCtx(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("%w (transport: %v)", ctxErr, err)
	}
	return err
}

// Devices lists the device sessions the daemon hosts (in fleet mode, the
// admitted logical sessions).
func (c *Client) Devices(ctx context.Context) ([]string, error) {
	resp, err := c.call(ctx, &server.Request{Op: "devices"})
	if err != nil {
		return nil, err
	}
	return resp.Devices, nil
}

// Stats fetches the daemon's statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*server.StatsMsg, error) {
	resp, err := c.call(ctx, &server.Request{Op: "statsz"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Session is a handle on one named server device plus the local bitstream
// mirror. A Session is not safe for concurrent use; open one per worker.
type Session struct {
	c      *Client
	device string

	// Mirror is the client-side device image, advanced only by the dirty
	// frames mutating responses carry (after the initial full sync at
	// connect time). Frames are patched into the mirror's bitstream as they
	// arrive; the in-memory routing view is rebuilt lazily — call
	// SyncMirror before inspecting it.
	Mirror *device.Device

	// FramesApplied counts partial frames applied to the mirror.
	FramesApplied int

	// Board is the fleet board currently serving this session ("" on
	// static daemons); Epoch its incarnation. Both advance on failover.
	Board string
	Epoch uint64

	// Resyncs counts mirror re-seeds forced by an epoch change (failover):
	// the dirty-frame push chain breaks at a board swap, so the mirror is
	// rebuilt from a full readback of the replacement board.
	Resyncs int

	stale bool // bits newer than Mirror's in-memory routing state
}

// SyncMirror rebuilds the mirror's in-memory routing and logic state from
// the accumulated bitstream patches. It is a no-op when already in sync,
// so callers can invoke it before every inspection and pay the full
// reconstruction only once per burst of pushed frames.
func (s *Session) SyncMirror() error {
	if !s.stale {
		return nil
	}
	if err := s.Mirror.RebuildFromBits(); err != nil {
		return fmt.Errorf("client: rebuilding mirror state: %w", err)
	}
	s.stale = false
	return nil
}

// Session opens a session on a named device: a connect round trip seeds
// the local mirror with the server's full configuration. In fleet mode the
// session name is also the placement identity — the coordinator places it
// on board slot FNV1a(name) mod fleet size.
func (c *Client) Session(ctx context.Context, deviceName string) (*Session, error) {
	return c.session(ctx, &server.Request{Op: "connect", Session: deviceName})
}

// SessionWithKey opens a session with an explicit fleet placement key: the
// session lands on board slot key mod fleet size, letting callers co-place
// or spread sessions deliberately. Static daemons ignore the key.
func (c *Client) SessionWithKey(ctx context.Context, deviceName string, key uint64) (*Session, error) {
	return c.session(ctx, &server.Request{Op: "connect", Session: deviceName, Key: &key})
}

func (c *Client) session(ctx context.Context, req *server.Request) (*Session, error) {
	resp, buf, err := c.callBuf(ctx, req)
	if err != nil {
		return nil, err
	}
	defer putPayload(buf) // the mirror copies the config as it applies it
	var a *arch.Arch
	switch resp.Arch {
	case "", "virtex":
		a = arch.NewVirtex()
	case "kestrel":
		a = arch.NewKestrel()
	default:
		return nil, fmt.Errorf("client: unknown architecture %q", resp.Arch)
	}
	mirror, err := device.New(a, resp.Rows, resp.Cols)
	if err != nil {
		return nil, err
	}
	if err := mirror.ApplyConfig(resp.Config); err != nil {
		return nil, fmt.Errorf("client: seeding mirror: %w", err)
	}
	mirror.ClearDirty()
	return &Session{c: c, device: req.Session, Mirror: mirror,
		Board: resp.Board, Epoch: resp.Epoch}, nil
}

// Device returns the session's device name.
func (s *Session) Device() string { return s.device }

// VerifyMirror re-extracts the mirror's accumulated configuration through
// the bitstream oracle and checks the structural routing invariants (no
// double drivers, no antennas, no orphan roots, no loops). It validates
// the frames themselves — the mirror's in-memory routing view is not
// consulted and need not be synced.
func (s *Session) VerifyMirror() error {
	stream, err := s.Mirror.FullConfig()
	if err != nil {
		return fmt.Errorf("client: verify mirror: %w", err)
	}
	if err := oracle.Audit(s.Mirror.A, stream, nil, false); err != nil {
		return fmt.Errorf("client: verify mirror: %w", err)
	}
	return nil
}

// do runs one op against the session, applying any pushed dirty frames to
// the mirror. A board-epoch change on a successful response means the
// session failed over since the last op: the incremental frame chain broke
// at the swap, so the mirror is re-seeded from a full readback of the
// replacement board before the op's result is returned.
func (s *Session) do(ctx context.Context, req *server.Request) (*server.Response, error) {
	req.Session = s.device
	resp, buf, err := s.c.callBuf(ctx, req)
	if err != nil {
		return nil, err
	}
	// On the binary framing resp.Frames and resp.Config alias buf, which
	// returns to the pool when this function is done with it: frames are
	// consumed into the mirror here; a Config (readback through do) is
	// detached so the caller can keep it.
	if len(resp.Config) > 0 {
		resp.Config = append([]byte(nil), resp.Config...)
	}
	if resp.Epoch != s.Epoch {
		resp.Frames = nil
		putPayload(buf)
		s.Board, s.Epoch = resp.Board, resp.Epoch
		if err := s.resync(ctx); err != nil {
			return nil, err
		}
		// The readback already reflects this op's effects; the piggybacked
		// frames are subsumed by it.
		return resp, nil
	}
	if len(resp.Frames) > 0 {
		_, aerr := s.Mirror.ApplyFramesRaw(resp.Frames)
		resp.Frames = nil
		putPayload(buf)
		if aerr != nil {
			return nil, fmt.Errorf("client: applying pushed frames: %w", aerr)
		}
		s.Mirror.ClearDirty()
		s.FramesApplied += resp.FrameN
		s.stale = true
		return resp, nil
	}
	putPayload(buf)
	return resp, nil
}

// resync re-seeds the mirror from a full readback. The readback is retried
// with capped exponential backoff plus jitter on transient rejections
// (failover in progress, queue momentarily full): a drain or failover that
// just bumped the epoch is often still settling the replacement board when
// the resync lands, and failing the client op over a beat of turbulence
// would turn a zero-loss handoff into a spurious error.
func (s *Session) resync(ctx context.Context) error {
	const maxAttempts = 8
	const maxBackoff = 250 * time.Millisecond
	backoff := 5 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter: a uniform draw from (0, backoff] so concurrent
			// sessions resyncing off the same epoch bump spread out.
			wait := time.Duration(rand.Int63n(int64(backoff))) + 1
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return fmt.Errorf("client: re-seeding mirror after failover: %w", ctx.Err())
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		resp, buf, err := s.c.callBuf(ctx, &server.Request{Op: "readback", Session: s.device})
		if err != nil {
			if errors.Is(err, ErrFailover) || errors.Is(err, ErrBusy) {
				lastErr = err
				continue
			}
			return fmt.Errorf("client: re-seeding mirror after failover: %w", err)
		}
		// The readback may itself ride a newer epoch (cascaded failover or a
		// drain completing mid-resync); adopt it so the next op does not
		// trigger a second, redundant resync.
		if resp.Epoch != 0 {
			s.Board, s.Epoch = resp.Board, resp.Epoch
		}
		aerr := s.Mirror.ApplyConfig(resp.Config)
		putPayload(buf)
		if aerr != nil {
			return fmt.Errorf("client: re-seeding mirror after failover: %w", aerr)
		}
		s.Mirror.ClearDirty()
		s.Resyncs++
		s.stale = true
		return nil
	}
	return fmt.Errorf("client: re-seeding mirror after failover: %d attempts failed: %w",
		maxAttempts, lastErr)
}

// Pin converts a core.Pin to its wire form.
func Pin(p core.Pin) server.EndPointMsg {
	return server.EndPointMsg{Pin: &server.PinMsg{Row: p.Row, Col: p.Col, Wire: int(p.W)}}
}

// PortRef names a port of a server-side core instance.
func PortRef(coreName, group string, index int) server.EndPointMsg {
	return server.EndPointMsg{Port: &server.PortRefMsg{Core: coreName, Group: group, Index: index}}
}

// Route connects source to one or more sinks (RouteNet / RouteFanout).
func (s *Session) Route(ctx context.Context, source server.EndPointMsg, sinks ...server.EndPointMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "route", Source: &source, Sinks: sinks})
	return err
}

// RouteBus routes width-aligned buses with the greedy sequential router.
func (s *Session) RouteBus(ctx context.Context, sources, sinks []server.EndPointMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "bus", Sources: sources, Sinks: sinks})
	return err
}

// RouteBusBatch routes a bus with the negotiated batch router.
func (s *Session) RouteBusBatch(ctx context.Context, sources, sinks []server.EndPointMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "bus_batch", Sources: sources, Sinks: sinks})
	return err
}

// RouteBatch routes a set of nets together under negotiated congestion.
func (s *Session) RouteBatch(ctx context.Context, nets []server.NetMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "batch", Nets: nets})
	return err
}

// Unroute removes the net sourced at the endpoint.
func (s *Session) Unroute(ctx context.Context, source server.EndPointMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "unroute", Source: &source})
	return err
}

// ReverseUnroute removes only the branch feeding one sink.
func (s *Session) ReverseUnroute(ctx context.Context, sink server.EndPointMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "reverse_unroute", Source: &sink})
	return err
}

// Trace returns the net driven by the source endpoint.
func (s *Session) Trace(ctx context.Context, source server.EndPointMsg) (*server.NetMsg, error) {
	resp, err := s.do(ctx, &server.Request{Op: "trace", Source: &source})
	if err != nil {
		return nil, err
	}
	return resp.Net, nil
}

// ReverseTrace returns the net branch feeding the sink endpoint.
func (s *Session) ReverseTrace(ctx context.Context, sink server.EndPointMsg) (*server.NetMsg, error) {
	resp, err := s.do(ctx, &server.Request{Op: "reverse_trace", Source: &sink})
	if err != nil {
		return nil, err
	}
	return resp.Net, nil
}

// NewCore instantiates and implements a library core on the session's
// device.
func (s *Session) NewCore(ctx context.Context, msg server.CoreMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "core_new", Core: &msg})
	return err
}

// ReplaceCore runs the §3.3 replace flow on a named core: unroute its
// ports, remove, optionally retune (constmul K), re-place at (row,col),
// re-implement, reconnect.
func (s *Session) ReplaceCore(ctx context.Context, msg server.CoreMsg) error {
	_, err := s.do(ctx, &server.Request{Op: "core_replace", Core: &msg})
	return err
}

// Readback pulls the server's full configuration stream (the heavyweight
// alternative to the incremental mirror).
func (s *Session) Readback(ctx context.Context) ([]byte, error) {
	resp, err := s.do(ctx, &server.Request{Op: "readback"})
	if err != nil {
		return nil, err
	}
	return resp.Config, nil
}
