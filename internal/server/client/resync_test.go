package client

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/jbits"
	"repro/internal/server"
	"repro/internal/server/protocol"
)

// fakeV2Server speaks just enough framed-JSON v2 to drive a Session through
// an epoch-bump resync: hello, connect, one mutating op that bumps the
// epoch, then scripted readback responses. It lets the tests inject
// transient failures on exactly the resync path.
type fakeV2Server struct {
	conn      net.Conn
	config    []byte // full config served on connect and readback
	rows      int
	cols      int
	readbacks int      // readback ops seen
	script    []string // per-readback error codes ("" = succeed)
	done      chan struct{}
}

func startFakeV2(t *testing.T, script []string) (*fakeV2Server, net.Conn) {
	t.Helper()
	const rows, cols = 12, 12
	d, err := device.New(arch.NewVirtex(), rows, cols)
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	cfg, err := d.FullConfig()
	if err != nil {
		t.Fatalf("FullConfig: %v", err)
	}
	srv, cli := net.Pipe()
	f := &fakeV2Server{conn: srv, config: cfg, rows: rows, cols: cols,
		script: script, done: make(chan struct{})}
	go f.serve()
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		<-f.done
	})
	return f, cli
}

func (f *fakeV2Server) serve() {
	defer close(f.done)
	for {
		op, payload, err := jbits.ReadFrame(f.conn)
		if err != nil {
			return
		}
		var req server.Request
		if op != server.OpService || json.Unmarshal(payload, &req) != nil {
			return
		}
		jbits.RecycleFrame(payload)
		resp := &server.Response{ID: req.ID}
		switch req.Op {
		case "hello":
			resp.Hello = &server.HelloMsg{Version: protocol.Version}
		case "connect":
			resp.Arch = "virtex"
			resp.Rows, resp.Cols = f.rows, f.cols
			resp.Config = f.config
			resp.Board, resp.Epoch = "b0", 1
		case "route":
			// The op succeeded but the session failed over under it: the
			// epoch the response rides is newer than the one the session
			// holds, which must trigger a mirror resync.
			resp.Board, resp.Epoch = "b1", 2
		case "readback":
			code := ""
			if f.readbacks < len(f.script) {
				code = f.script[f.readbacks]
			}
			f.readbacks++
			if code != "" {
				resp.ErrorCode = code
				resp.Err = "fake: injected " + code
			} else {
				resp.Config = f.config
				resp.Board, resp.Epoch = "b1", 2
			}
		default:
			resp.ErrorCode = protocol.CodeUnknownOp
			resp.Err = "fake: unknown op " + req.Op
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if jbits.WriteFrame(f.conn, server.OpService|jbits.RespFlag, out) != nil {
			return
		}
	}
}

func pinAt(row, col, w int) core.Pin { return core.NewPin(row, col, arch.Wire(w)) }

func openFakeSession(t *testing.T, cli net.Conn) *Session {
	t.Helper()
	c := NewClient(cli)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	return s
}

// TestResyncRetriesTransient proves the epoch-bump resync survives
// transient rejections: the first two readbacks answer failover/busy (a
// drain or failover still settling) and only the third succeeds. Before the
// backoff retry this failed the op on the first transient error.
func TestResyncRetriesTransient(t *testing.T) {
	f, cli := startFakeV2(t, []string{protocol.CodeFailover, protocol.CodeBusy, ""})
	s := openFakeSession(t, cli)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	src := Pin(pinAt(1, 1, 0))
	sink := Pin(pinAt(2, 2, 0))
	if err := s.Route(ctx, src, sink); err != nil {
		t.Fatalf("Route across epoch bump: %v", err)
	}
	if s.Resyncs != 1 {
		t.Errorf("Resyncs = %d, want 1", s.Resyncs)
	}
	if s.Epoch != 2 || s.Board != "b1" {
		t.Errorf("session at epoch %d board %q, want 2/b1", s.Epoch, s.Board)
	}
	if f.readbacks != 3 {
		t.Errorf("server saw %d readbacks, want 3 (two transient, one good)", f.readbacks)
	}
}

// TestResyncFailsFastOnPermanentError proves the retry loop does not mask
// non-transient failures: a readback rejected with no_device fails the op
// immediately, without burning the attempt budget.
func TestResyncFailsFastOnPermanentError(t *testing.T) {
	f, cli := startFakeV2(t, []string{protocol.CodeNoDevice})
	s := openFakeSession(t, cli)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Route(ctx, Pin(pinAt(1, 1, 0)), Pin(pinAt(2, 2, 0)))
	if err == nil {
		t.Fatal("Route succeeded, want resync failure")
	}
	var se *ServiceError
	if !errors.As(err, &se) || se.Code != protocol.CodeNoDevice {
		t.Errorf("err = %v, want ServiceError no_device", err)
	}
	if f.readbacks != 1 {
		t.Errorf("server saw %d readbacks, want 1 (no retry on permanent error)", f.readbacks)
	}
}

// TestResyncGivesUpAfterBudget proves the retry budget is bounded: a
// readback that never stops answering failover eventually surfaces the
// transient error instead of looping forever.
func TestResyncGivesUpAfterBudget(t *testing.T) {
	always := make([]string, 32)
	for i := range always {
		always[i] = protocol.CodeFailover
	}
	f, cli := startFakeV2(t, always)
	s := openFakeSession(t, cli)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := s.Route(ctx, Pin(pinAt(1, 1, 0)), Pin(pinAt(2, 2, 0)))
	if !errors.Is(err, ErrFailover) {
		t.Fatalf("err = %v, want wrapped ErrFailover after budget", err)
	}
	if f.readbacks < 2 || f.readbacks > 16 {
		t.Errorf("server saw %d readbacks, want a small bounded retry count", f.readbacks)
	}
}
