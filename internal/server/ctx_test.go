package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/jbits"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/protocol"
)

func testPin(r, c int, w arch.Wire) server.EndPointMsg {
	return server.EndPointMsg{Pin: &server.PinMsg{Row: r, Col: c, Wire: int(w)}}
}

// newTestWorker builds a bare worker (no daemon, no wire) for queue-level
// context semantics.
func newTestWorker(t *testing.T, opts server.Options) *server.Worker {
	t.Helper()
	w, err := server.NewWorker(server.WorkerConfig{Name: "w", Rows: 16, Cols: 24, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		w.Close()
		<-w.Done()
	})
	return w
}

// jam occupies the worker goroutine until the returned release func is
// called.
func jam(t *testing.T, w *server.Worker) (release func()) {
	t.Helper()
	started := make(chan struct{})
	block := make(chan struct{})
	go func() {
		_ = w.Do(context.Background(), func(*core.Router, *jbits.Session) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	return func() { close(block) }
}

// fill occupies one queue slot with a no-op task. The wait for that task
// is registered as a cleanup so its enqueue finishes before the worker
// closes its queue.
func fill(t *testing.T, w *server.Worker) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Do(context.Background(), func(*core.Router, *jbits.Session) error { return nil })
	}()
	t.Cleanup(func() { <-done })
	time.Sleep(10 * time.Millisecond)
}

// TestSubmitCanceledWhileWaitingForQueueSlot: with the queue full, a
// Submit blocked on the enqueue wait is released by context cancellation
// with the typed canceled code — it neither busy-waits the full enqueue
// timeout nor executes.
func TestSubmitCanceledWhileWaitingForQueueSlot(t *testing.T) {
	w := newTestWorker(t, server.Options{QueueDepth: 1, EnqueueTimeout: time.Minute})
	release := jam(t, w)
	defer release()
	fill(t, w)

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	src := testPin(5, 7, arch.S1YQ)
	resp := w.Submit(ctx, &server.Request{Op: "route", Source: &src,
		Sinks: []server.EndPointMsg{testPin(6, 8, arch.S0F3)}})
	if resp.ErrorCode != protocol.CodeCanceled {
		t.Fatalf("code = %q (err %q), want %q", resp.ErrorCode, resp.Err, protocol.CodeCanceled)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancellation took %v — Submit sat out the enqueue timeout", waited)
	}
}

// TestSubmitDeadlineWhileWaitingForQueueSlot: same, for an expiring
// deadline — the typed deadline code, well before the enqueue timeout.
func TestSubmitDeadlineWhileWaitingForQueueSlot(t *testing.T) {
	w := newTestWorker(t, server.Options{QueueDepth: 1, EnqueueTimeout: time.Minute})
	release := jam(t, w)
	defer release()
	fill(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	src := testPin(5, 7, arch.S1YQ)
	resp := w.Submit(ctx, &server.Request{Op: "route", Source: &src,
		Sinks: []server.EndPointMsg{testPin(6, 8, arch.S0F3)}})
	if resp.ErrorCode != protocol.CodeDeadline {
		t.Fatalf("code = %q (err %q), want %q", resp.ErrorCode, resp.Err, protocol.CodeDeadline)
	}
}

// TestQueuedOpSkippedWhenContextDies: an op that made it into the queue but
// whose context died before the worker reached it is rejected at dequeue —
// it must NOT execute late.
func TestQueuedOpSkippedWhenContextDies(t *testing.T) {
	w := newTestWorker(t, server.Options{QueueDepth: 4})
	release := jam(t, w)

	ctx, cancel := context.WithCancel(context.Background())
	src := testPin(5, 7, arch.S1YQ)
	respCh := make(chan *server.Response, 1)
	go func() {
		respCh <- w.Submit(ctx, &server.Request{Op: "route", Source: &src,
			Sinks: []server.EndPointMsg{testPin(6, 8, arch.S0F3)}})
	}()
	time.Sleep(10 * time.Millisecond) // op is queued behind the jam
	cancel()
	resp := <-respCh
	if resp.ErrorCode != protocol.CodeCanceled {
		t.Fatalf("code = %q, want %q", resp.ErrorCode, protocol.CodeCanceled)
	}
	release()

	// The canceled route must not have executed.
	tr := w.Submit(context.Background(), &server.Request{Op: "trace", Source: &src})
	if tr.Err != "" {
		t.Fatal(tr.Err)
	}
	if len(tr.Net.Pips) != 0 || len(tr.Net.Sinks) != 0 {
		t.Fatalf("canceled op executed anyway: %+v", tr.Net)
	}
}

// TestEveryRPCHonorsCancellation: the whole client surface returns a
// context error for a dead context instead of touching the wire.
func TestEveryRPCHonorsCancellation(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "dev")
	c, err := client.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Session(context.Background(), "dev")
	if err != nil {
		t.Fatal(err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	src := testPin(5, 7, arch.S1YQ)
	k := uint64(3)
	rpcs := map[string]func(context.Context) error{
		"route": func(ctx context.Context) error { return s.Route(ctx, src, testPin(6, 8, arch.S0F3)) },
		"bus": func(ctx context.Context) error {
			return s.RouteBus(ctx, []server.EndPointMsg{src}, []server.EndPointMsg{testPin(6, 8, arch.S0F3)})
		},
		"bus_batch": func(ctx context.Context) error {
			return s.RouteBusBatch(ctx, []server.EndPointMsg{src}, []server.EndPointMsg{testPin(6, 8, arch.S0F3)})
		},
		"batch": func(ctx context.Context) error {
			return s.RouteBatch(ctx, []server.NetMsg{{Source: src, Sinks: []server.EndPointMsg{testPin(6, 8, arch.S0F3)}}})
		},
		"unroute":         func(ctx context.Context) error { return s.Unroute(ctx, src) },
		"reverse_unroute": func(ctx context.Context) error { return s.ReverseUnroute(ctx, testPin(6, 8, arch.S0F3)) },
		"trace":           func(ctx context.Context) error { _, err := s.Trace(ctx, src); return err },
		"reverse_trace":   func(ctx context.Context) error { _, err := s.ReverseTrace(ctx, testPin(6, 8, arch.S0F3)); return err },
		"core_new": func(ctx context.Context) error {
			return s.NewCore(ctx, server.CoreMsg{Name: "m", Kind: "constmul", Row: 4, Col: 10, K: &k, KBits: 2})
		},
		"core_replace": func(ctx context.Context) error { return s.ReplaceCore(ctx, server.CoreMsg{Name: "m", Row: 5, Col: 10}) },
		"readback":     func(ctx context.Context) error { _, err := s.Readback(ctx); return err },
		"devices":      func(ctx context.Context) error { _, err := c.Devices(ctx); return err },
		"statsz":       func(ctx context.Context) error { _, err := c.Stats(ctx); return err },
		"connect":      func(ctx context.Context) error { _, err := c.Session(ctx, "dev"); return err },
	}
	for name, rpc := range rpcs {
		if err := rpc(dead); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with dead context: err = %v, want context.Canceled", name, err)
		}
	}
	// The session and connection survive all those rejections.
	if err := s.Route(context.Background(), src, testPin(6, 8, arch.S0F3)); err != nil {
		t.Fatalf("session dead after canceled RPCs: %v", err)
	}
}

// rawCall sends one service frame and decodes the response, bypassing the
// client (and therefore its automatic hello).
func rawCall(t *testing.T, conn net.Conn, req *server.Request) *server.Response {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := jbits.WriteFrame(conn, server.OpService, payload); err != nil {
		t.Fatal(err)
	}
	_, body, err := jbits.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp := new(server.Response)
	if err := json.Unmarshal(body, resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHelloRequired: a pre-v2 client that never sends hello gets one clear
// typed version error, not undefined behavior.
func TestHelloRequired(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "dev")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp := rawCall(t, conn, &server.Request{ID: 1, Op: "devices"})
	if resp.ErrorCode != protocol.CodeVersion {
		t.Fatalf("op before hello: code %q err %q, want %q", resp.ErrorCode, resp.Err, protocol.CodeVersion)
	}
	// The connection survives; a proper hello unlocks it.
	resp = rawCall(t, conn, &server.Request{ID: 2, Op: "hello", Hello: &server.HelloMsg{Version: protocol.Version}})
	if resp.Err != "" || resp.Hello == nil || resp.Hello.Version != protocol.Version {
		t.Fatalf("hello: %+v", resp)
	}
	resp = rawCall(t, conn, &server.Request{ID: 3, Op: "devices"})
	if resp.Err != "" || len(resp.Devices) != 1 {
		t.Fatalf("devices after hello: %+v", resp)
	}
}

// TestHelloVersionMismatch: a wrong version in hello is rejected with the
// typed code, and the session stays locked.
func TestHelloVersionMismatch(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "dev")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp := rawCall(t, conn, &server.Request{ID: 1, Op: "hello", Hello: &server.HelloMsg{Version: 1}})
	if resp.ErrorCode != protocol.CodeVersion {
		t.Fatalf("v1 hello: code %q, want %q", resp.ErrorCode, protocol.CodeVersion)
	}
	resp = rawCall(t, conn, &server.Request{ID: 2, Op: "devices"})
	if resp.ErrorCode != protocol.CodeVersion {
		t.Fatalf("op after rejected hello: code %q, want %q", resp.ErrorCode, protocol.CodeVersion)
	}
}

// TestClientSurfacesVersionMismatch: the typed sentinel comes through the
// client error chain.
func TestClientSurfacesVersionMismatch(t *testing.T) {
	// A fake daemon that answers every request with a version error, as a
	// v3 server would answer a v2 hello.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			_, payload, err := jbits.ReadFrame(conn)
			if err != nil {
				return
			}
			var req server.Request
			_ = json.Unmarshal(payload, &req)
			out, _ := json.Marshal(&server.Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
				Err: "server: protocol version mismatch: client speaks v2, server speaks v3"})
			if jbits.WriteFrame(conn, server.OpService|jbits.RespFlag, out) != nil {
				return
			}
		}
	}()
	_, err = client.Dial(context.Background(), ln.Addr().String())
	if !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
}

// TestHelloAdvertisesCaps: capability flags reach the client.
func TestHelloAdvertisesCaps(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{ParanoidVerify: true}, "dev")
	c, err := client.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.HasCap(protocol.CapParanoid) {
		t.Errorf("caps = %v, want %q advertised", c.Caps(), protocol.CapParanoid)
	}
	if c.HasCap(protocol.CapFleet) {
		t.Error("static daemon advertises the fleet capability")
	}
}
