// Package fleet shards the jrouted daemon over a fleet of boards: N board
// slots, each a device worker tethered to its own (emulated) FPGA board
// over the XHWIF wire, plus K spare boards. Logical client sessions are
// placed on slots deterministically — slot = placement key mod fleet size,
// where the key defaults to FNV-1a of the session name — so any coordinator
// given the same fleet size computes the same placement with no shared
// state. Admission control bounds the sessions per slot.
//
// Every acknowledged mutating op is journaled (the core instances created,
// plus a pin-level snapshot of the live connections with their exact PIP
// paths). When a board dies — detected by a failed configuration push or a
// failed health probe — the coordinator replays the slot's journal onto a
// spare: cores are re-instantiated through the normal op path, connections
// are re-adopted replay-first through the relocation route cache (the
// remembered paths are swept for legality and committed verbatim; a full
// maze search is paid only when a sweep fails), the spare gets a full
// configuration push, and the bitstream oracle audits the result before the
// slot is swapped. The slot epoch increments on every swap; clients observe
// the epoch change and re-seed their mirrors.
//
// Journal consistency: a worker serializes everything behind its queue, and
// the journal is appended on the worker goroutine immediately after the
// board acknowledged the op's frames. Any failure that triggers failover
// (an op's push failing, a probe failing) therefore executes after every
// acknowledged op's journal entry is in place — the journal can never miss
// an acked op.
package fleet

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/jbits"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/server/protocol"
)

// Config describes a board fleet.
type Config struct {
	Boards int // board slots (required, >= 1)
	Spares int // spare boards available for failover

	Arch string // "" or "virtex", or "kestrel"
	Rows int
	Cols int

	// SessionCap bounds the logical sessions admitted per board slot
	// (0 = unlimited).
	SessionCap int

	// Opts configure every board worker (queue depth, parallelism, route
	// cache, paranoid verify). The route cache should stay enabled: the
	// failover journal leans on it to remember exact paths.
	Opts server.Options

	// PortFrameTime models the board configuration port's service time per
	// frame: every frame pushed over a board link holds that board's port
	// for this long. It is the serial resource sharding buys more of — the
	// same per-frame cost applies at every fleet size. 0 disables the
	// model (pushes are then limited only by CPU).
	PortFrameTime time.Duration

	// ProbeInterval is the background health-probe period (0 = no
	// background probing; probes can still be run with ProbeAll).
	ProbeInterval time.Duration

	// WrapLink, when set, wraps each board's coordinator-side transport as
	// it is created — the hook tests use to interpose jbits.FaultConn
	// between the coordinator and a board.
	WrapLink func(board string, link io.ReadWriter) io.ReadWriter
}

func (c Config) archName() string {
	if c.Arch == "" {
		return "virtex"
	}
	return c.Arch
}

// swappableConn is an io.ReadWriter whose inner transport can be wrapped
// mid-session (fault injection) without re-dialing the RemoteBoard.
type swappableConn struct {
	mu    sync.Mutex
	inner io.ReadWriter
}

func (s *swappableConn) get() io.ReadWriter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

func (s *swappableConn) Read(p []byte) (int, error)  { return s.get().Read(p) }
func (s *swappableConn) Write(p []byte) (int, error) { return s.get().Write(p) }

func (s *swappableConn) wrap(f func(io.ReadWriter) io.ReadWriter) {
	s.mu.Lock()
	s.inner = f(s.inner)
	s.mu.Unlock()
}

// board is one emulated FPGA board plus its XHWIF tether: the hardware-side
// Serve loop and the coordinator-side RemoteBoard handle.
type board struct {
	name   string
	hw     *jbits.Board
	remote *jbits.RemoteBoard
	link   *swappableConn
	raw    net.Conn // coordinator-side pipe end; Close severs the link
	served chan struct{}
}

func (c *Coordinator) newBoard(name string) (*board, error) {
	hw, err := jbits.NewBoard(name, archByName(c.cfg.archName()), c.cfg.Rows, c.cfg.Cols)
	if err != nil {
		return nil, err
	}
	coordSide, boardSide := net.Pipe()
	var rw io.ReadWriter = coordSide
	if c.cfg.WrapLink != nil {
		rw = c.cfg.WrapLink(name, rw)
	}
	link := &swappableConn{inner: rw}
	b := &board{
		name:   name,
		hw:     hw,
		remote: jbits.Dial(link),
		link:   link,
		raw:    coordSide,
		served: make(chan struct{}),
	}
	go func() {
		defer close(b.served)
		_ = jbits.Serve(boardSide, hw)
		boardSide.Close()
	}()
	return b, nil
}

func archByName(name string) *arch.Arch {
	if name == "kestrel" {
		return arch.NewKestrel()
	}
	return arch.NewVirtex()
}

// journal is one slot's failover memory: the core instances created on it
// (latest geometry and tuning per name, in creation order) and the latest
// pin-level snapshot of the router's live connections.
type journal struct {
	mu        sync.Mutex
	coreOrder []string
	cores     map[string]protocol.CoreMsg
	conns     []core.ConnectionRecord
}

func newJournal() *journal {
	return &journal{cores: make(map[string]protocol.CoreMsg)}
}

func (j *journal) record(req *server.Request, conns []core.ConnectionRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if (req.Op == "core_new" || req.Op == "core_replace") && req.Core != nil {
		if _, known := j.cores[req.Core.Name]; !known {
			j.coreOrder = append(j.coreOrder, req.Core.Name)
		}
		j.cores[req.Core.Name] = *req.Core
	}
	j.conns = conns
}

// snapshot returns the cores in creation order plus the connection records.
func (j *journal) snapshot() ([]protocol.CoreMsg, []core.ConnectionRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cores := make([]protocol.CoreMsg, 0, len(j.coreOrder))
	for _, name := range j.coreOrder {
		cores = append(cores, j.cores[name])
	}
	conns := append([]core.ConnectionRecord(nil), j.conns...)
	return cores, conns
}

// slot is one board slot: the board currently serving it, the worker bound
// to that board, and the slot's journal and epoch.
type slot struct {
	idx int

	mu       sync.Mutex
	b        *board
	worker   *server.Worker
	epoch    uint64
	down     bool // dead with no spare left
	failing  bool // failover pending: reject ops instead of hitting the dead worker
	sessions map[string]struct{}

	j *journal
}

func (s *slot) current() (*board, *server.Worker, uint64, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b, s.worker, s.epoch, s.down, s.failing
}

// Coordinator fronts the board fleet; it implements server.Fleet.
type Coordinator struct {
	cfg   Config
	slots []*slot

	mu         sync.Mutex
	spares     []*board
	graveyard  []*server.Worker // dead slots' workers; drained at Shutdown
	deadBoards []*board
	sessionKey map[string]uint64 // admitted sessions and the key that placed them
	closed     bool

	counters struct {
		failovers        int
		failoverFails    int
		healthProbes     int
		probeFails       int
		admissionRejects int
		restoredConns    int
		replayedPaths    int
		restoreUs        int64 // cumulative failover restore-routing time
	}

	failoverCh   chan failoverReq
	failoverDone chan struct{}
	stopProbe    chan struct{}
	probeDone    chan struct{}
}

type failoverReq struct {
	slot  *slot
	epoch uint64 // the epoch observed dead; stale requests are dropped
}

// New builds the fleet: Boards slots with one board and worker each, plus
// Spares idle boards, and starts the failover executor (and the background
// health-probe loop when ProbeInterval is set).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("fleet: need at least one board")
	}
	// Audit a template library once for the whole fleet: every board
	// worker (and every failover spare) then shares the audited copy
	// read-only instead of each paying its own blank-device sweep.
	if lib := cfg.Opts.Library; lib != nil && !lib.Audited() && lib.Arch() == cfg.archName() {
		audited, _, err := lib.Audit(archByName(cfg.archName()))
		if err != nil {
			return nil, fmt.Errorf("fleet: template library: %w", err)
		}
		cfg.Opts.Library = audited
	}
	c := &Coordinator{
		cfg:          cfg,
		sessionKey:   make(map[string]uint64),
		failoverCh:   make(chan failoverReq, 4*cfg.Boards),
		failoverDone: make(chan struct{}),
		stopProbe:    make(chan struct{}),
		probeDone:    make(chan struct{}),
	}
	for i := 0; i < cfg.Boards; i++ {
		sl := &slot{idx: i, epoch: 1, sessions: make(map[string]struct{}), j: newJournal()}
		b, err := c.newBoard(fmt.Sprintf("board%d", i))
		if err != nil {
			return nil, err
		}
		w, err := c.newWorker(sl, b)
		if err != nil {
			return nil, err
		}
		sl.b, sl.worker = b, w
		c.slots = append(c.slots, sl)
	}
	for i := 0; i < cfg.Spares; i++ {
		b, err := c.newBoard(fmt.Sprintf("spare%d", i))
		if err != nil {
			return nil, err
		}
		c.spares = append(c.spares, b)
	}
	go c.failoverLoop()
	if cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.probeDone)
	}
	return c, nil
}

// newWorker builds the device worker tethered to b: its ship hook pushes
// every acknowledged op's dirty frames over the board link (paying the
// modeled configuration-port time), and its journal hook appends to the
// slot's failover journal.
func (c *Coordinator) newWorker(sl *slot, b *board) (*server.Worker, error) {
	remote := b.remote
	return server.NewWorker(server.WorkerConfig{
		Name: b.name,
		Arch: c.cfg.Arch,
		Rows: c.cfg.Rows,
		Cols: c.cfg.Cols,
		Opts: c.cfg.Opts,
		ShipHook: func(stream []byte, frames int) error {
			c.chargePort(frames)
			return remote.ConfigurePartial(stream)
		},
		JournalHook: func(req *server.Request, conns []core.ConnectionRecord) {
			sl.j.record(req, conns)
		},
	})
}

// chargePort models the board configuration port serving n frames.
func (c *Coordinator) chargePort(frames int) {
	if c.cfg.PortFrameTime > 0 && frames > 0 {
		time.Sleep(time.Duration(frames) * c.cfg.PortFrameTime)
	}
}

// PlacementKey is the default placement hash: FNV-1a of the session name.
// Placement is slot = key mod fleet size — a pure function of name and
// fleet size, so every coordinator (and any client predicting placement)
// agrees with no coordination.
func PlacementKey(session string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, session)
	return h.Sum64()
}

func (c *Coordinator) slotFor(key uint64) *slot {
	return c.slots[int(key%uint64(len(c.slots)))]
}

// Sessions lists the admitted logical sessions.
func (c *Coordinator) Sessions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.sessionKey))
	for name := range c.sessionKey {
		out = append(out, name)
	}
	return out
}

// Submit handles one per-session request: placement and admission on
// connect, board lookup on everything else. Successful responses carry the
// serving board's name and epoch so clients can detect failovers.
func (c *Coordinator) Submit(ctx context.Context, req *server.Request) *server.Response {
	if req.Session == "" {
		return &server.Response{ID: req.ID, ErrorCode: protocol.CodeBadRequest,
			Err: "fleet: op without a session name"}
	}
	if req.Op == "connect" {
		return c.connect(ctx, req)
	}
	c.mu.Lock()
	key, admitted := c.sessionKey[req.Session]
	c.mu.Unlock()
	if !admitted {
		return &server.Response{ID: req.ID, ErrorCode: protocol.CodeNoDevice,
			Err: fmt.Sprintf("fleet: no session %q (connect first)", req.Session)}
	}
	sl := c.slotFor(key)
	return c.submitToSlot(ctx, sl, req)
}

// submitToSlot runs one request on a slot's current worker, short-circuiting
// slots that are down or mid-failover: an op must never execute on the dead
// board's worker once the death is known — its router still holds the
// unacknowledged mutations of the ops the dead link failed, and running the
// retries there would surface phantom conflicts instead of the retryable
// failover code.
func (c *Coordinator) submitToSlot(ctx context.Context, sl *slot, req *server.Request) *server.Response {
	b, w, epoch, down, failing := sl.current()
	if down || b == nil {
		return &server.Response{ID: req.ID, ErrorCode: protocol.CodeBoardDown,
			Err: fmt.Sprintf("fleet: slot %d is down and no spare is left", sl.idx)}
	}
	if failing {
		return &server.Response{ID: req.ID, ErrorCode: protocol.CodeFailover,
			Err: fmt.Sprintf("fleet: slot %d is failing over, retry", sl.idx)}
	}
	resp := w.Submit(ctx, req)
	c.noteResult(sl, epoch, resp)
	return resp
}

// connect admits (or re-attaches) a session and returns the slot's current
// configuration.
func (c *Coordinator) connect(ctx context.Context, req *server.Request) *server.Response {
	key := PlacementKey(req.Session)
	if req.Key != nil {
		key = *req.Key
	}
	sl := c.slotFor(key)
	sl.mu.Lock()
	_, attached := sl.sessions[req.Session]
	if !attached {
		if c.cfg.SessionCap > 0 && len(sl.sessions) >= c.cfg.SessionCap {
			sl.mu.Unlock()
			c.mu.Lock()
			c.counters.admissionRejects++
			c.mu.Unlock()
			return &server.Response{ID: req.ID, ErrorCode: protocol.CodeAdmission,
				Err: fmt.Sprintf("fleet: slot %d at its session cap (%d)", sl.idx, c.cfg.SessionCap)}
		}
		sl.sessions[req.Session] = struct{}{}
	}
	sl.mu.Unlock()
	c.mu.Lock()
	c.sessionKey[req.Session] = key
	c.mu.Unlock()
	return c.submitToSlot(ctx, sl, req)
}

// noteResult stamps the serving board and epoch on successful responses and
// turns push failures into failover requests.
func (c *Coordinator) noteResult(sl *slot, epoch uint64, resp *server.Response) {
	if resp.ErrorCode == protocol.CodeFailover {
		c.requestFailover(sl, epoch)
		return
	}
	if resp.Err == "" {
		b, _, cur, _, _ := sl.current()
		if b != nil {
			resp.Board, resp.Epoch = b.name, cur
		}
	}
}

// requestFailover queues a failover for the slot if its epoch is still the
// one observed dead (duplicates and stale reports are dropped). The slot is
// marked failing so further ops are rejected with the retryable code rather
// than executed against the dead board's worker.
func (c *Coordinator) requestFailover(sl *slot, epoch uint64) {
	sl.mu.Lock()
	if sl.epoch == epoch && !sl.down {
		sl.failing = true
	}
	sl.mu.Unlock()
	select {
	case c.failoverCh <- failoverReq{slot: sl, epoch: epoch}:
	default:
		// Queue full: a failover for this slot is already pending; the
		// epoch check will drop the duplicate anyway.
	}
}

func (c *Coordinator) failoverLoop() {
	defer close(c.failoverDone)
	for req := range c.failoverCh {
		c.failover(req.slot, req.epoch)
	}
}

// failover replaces a dead board with a spare: replay the slot's journal
// onto a fresh worker tethered to the spare (cores through the normal op
// path, connections re-adopted replay-first through the route cache), push
// the full configuration, audit the spare with the bitstream oracle, then
// swap it in under a new epoch. The dead worker is parked in the graveyard
// — its queue must stay open for any straggling submitters — and drained at
// Shutdown.
func (c *Coordinator) failover(sl *slot, deadEpoch uint64) {
	sl.mu.Lock()
	if sl.epoch != deadEpoch || sl.down {
		sl.mu.Unlock()
		return // stale report: this epoch was already failed over
	}
	oldBoard, oldWorker := sl.b, sl.worker
	sl.mu.Unlock()

	c.mu.Lock()
	if len(c.spares) == 0 {
		c.counters.failoverFails++
		c.mu.Unlock()
		sl.mu.Lock()
		sl.down = true
		sl.failing = false
		sl.mu.Unlock()
		return
	}
	spare := c.spares[0]
	c.spares = c.spares[1:]
	c.mu.Unlock()

	newWorker, restored, replayed, restoreTime, err := c.replay(sl, spare)
	if err != nil {
		// The spare itself is bad; consume it and report the slot dead
		// rather than serving a board the oracle rejected.
		c.mu.Lock()
		c.counters.failoverFails++
		c.deadBoards = append(c.deadBoards, spare)
		c.mu.Unlock()
		sl.mu.Lock()
		sl.down = true
		sl.failing = false
		sl.mu.Unlock()
		return
	}

	sl.mu.Lock()
	sl.b = spare
	sl.worker = newWorker
	sl.epoch++
	sl.failing = false
	sl.mu.Unlock()

	c.mu.Lock()
	c.counters.failovers++
	c.counters.restoredConns += restored
	c.counters.replayedPaths += replayed
	c.counters.restoreUs += restoreTime.Microseconds()
	c.graveyard = append(c.graveyard, oldWorker)
	c.deadBoards = append(c.deadBoards, oldBoard)
	c.mu.Unlock()
	_ = oldBoard.raw.Close() // sever whatever is left of the dead link
}

// replay rebuilds the slot's journaled state on a fresh worker tethered to
// the spare and audits the result. Returns the replayed worker, how many
// connections were restored, how many of those were served by cached-path
// replay rather than a fresh search, and the time spent on the restore
// routing itself (core re-implementation + connection adoption — the part
// a warm template library accelerates; the config push and oracle audit
// that follow cost the same either way).
func (c *Coordinator) replay(sl *slot, spare *board) (*server.Worker, int, int, time.Duration, error) {
	coreMsgs, conns := sl.j.snapshot()
	w, err := c.newWorker(sl, spare)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fail := func(err error) (*server.Worker, int, int, time.Duration, error) {
		w.Close()
		<-w.Done()
		return nil, 0, 0, 0, err
	}
	restoreStart := time.Now()
	// Cores first: re-instantiating them re-routes their internal nets.
	for i := range coreMsgs {
		msg := coreMsgs[i]
		resp := w.Submit(ctx, &server.Request{Op: "core_new", Session: "replay", Core: &msg})
		if resp.Err != "" {
			return fail(fmt.Errorf("fleet: replaying core %q: %s", msg.Name, resp.Err))
		}
	}
	// Then the connection records. Adoption is idempotent against nets the
	// cores' Implement already routed, and replay-first: the remembered
	// paths are swept for legality and committed without a search.
	var replayed int
	var restore time.Duration
	err = w.Do(ctx, func(r *core.Router, js *jbits.Session) error {
		before := r.Stats().CacheHits
		for _, rec := range conns {
			if err := r.AdoptConnection(rec); err != nil {
				return err
			}
		}
		replayed = r.Stats().CacheHits - before
		restore = time.Since(restoreStart)
		// The adoption dirtied frames the ship hook never saw. The spare
		// started blank — the same state this worker's device grew from —
		// so pushing just the dirty delta re-creates the dead board's
		// configuration without streaming the whole device through the
		// port: the failover window scales with the remembered state, not
		// the device size.
		if js.Dev.DirtyFrameCount() > 0 {
			stream, err := js.Dev.AppendPartialConfig(nil)
			if err != nil {
				return err
			}
			c.chargePort(js.Dev.DirtyFrameCount())
			if err := spare.remote.ConfigurePartial(stream); err != nil {
				return err
			}
			// On the wire and applied; the buffer can seed the frame pool.
			jbits.RecycleFrame(stream)
		}
		js.Dev.ClearDirty()
		// Audit the spare through its own configuration port before
		// trusting it: readback must match the replayed device's full
		// configuration and pass the oracle's structural invariants.
		full, err := js.Dev.FullConfig()
		if err != nil {
			return err
		}
		back, err := spare.remote.Readback()
		if err != nil {
			return err
		}
		defer jbits.RecycleFrame(back)
		if !bytes.Equal(back, full) {
			return fmt.Errorf("fleet: spare %s readback diverges from pushed configuration", spare.name)
		}
		return oracle.Audit(js.Dev.A, back, nil, false)
	})
	if err != nil {
		return fail(err)
	}
	return w, len(conns), replayed, restore, nil
}

// KillBoard severs slot i's board link immediately — the test and demo
// lever for "the board died". The next push or probe on the slot fails and
// triggers failover.
func (c *Coordinator) KillBoard(i int) error {
	if i < 0 || i >= len(c.slots) {
		return fmt.Errorf("fleet: no slot %d", i)
	}
	b, _, _, _, _ := c.slots[i].current()
	if b == nil {
		return fmt.Errorf("fleet: slot %d has no board", i)
	}
	return b.raw.Close()
}

// FaultLink wraps slot i's current board link with seeded fault injection
// (jbits.FaultConn), so the board dies according to the fault schedule —
// e.g. mid-RouteFanout — instead of instantly.
func (c *Coordinator) FaultLink(i int, opts jbits.FaultOptions) error {
	if i < 0 || i >= len(c.slots) {
		return fmt.Errorf("fleet: no slot %d", i)
	}
	b, _, _, _, _ := c.slots[i].current()
	if b == nil {
		return fmt.Errorf("fleet: slot %d has no board", i)
	}
	b.link.wrap(func(inner io.ReadWriter) io.ReadWriter {
		return jbits.NewFaultConn(inner, opts)
	})
	return nil
}

// Epoch returns slot i's current epoch.
func (c *Coordinator) Epoch(i int) uint64 {
	_, _, epoch, _, _ := c.slots[i].current()
	return epoch
}

// probeLoop runs background health probes.
func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
			c.ProbeAll(ctx)
			cancel()
		case <-c.stopProbe:
			return
		}
	}
}

// ProbeAll health-probes every live slot once: the board is read back over
// its link and audited by the bitstream oracle against the worker's own
// bitstream. A failed probe (dead link, divergent or structurally invalid
// configuration) triggers failover.
func (c *Coordinator) ProbeAll(ctx context.Context) {
	for _, sl := range c.slots {
		b, w, epoch, down, failing := sl.current()
		if down || failing || b == nil {
			continue // dead or already failing over: nothing to learn
		}
		c.mu.Lock()
		c.counters.healthProbes++
		c.mu.Unlock()
		err := w.Do(ctx, func(r *core.Router, js *jbits.Session) error {
			back, err := b.remote.Readback()
			if err != nil {
				return err
			}
			// The readback travels through the pooled frame path; it is
			// dead once audited, so hand it back instead of churning a
			// full-config allocation per probe per board.
			defer jbits.RecycleFrame(back)
			want, err := js.Dev.FullConfig()
			if err != nil {
				return err
			}
			if !bytes.Equal(back, want) {
				return fmt.Errorf("fleet: %s readback diverges from session state", b.name)
			}
			return oracle.Audit(js.Dev.A, back, nil, false)
		})
		if err != nil {
			c.mu.Lock()
			c.counters.probeFails++
			c.mu.Unlock()
			c.requestFailover(sl, epoch)
		}
	}
}

// Stats snapshots the coordinator counters and per-slot sections.
func (c *Coordinator) Stats() *protocol.FleetStatsMsg {
	c.mu.Lock()
	out := &protocol.FleetStatsMsg{
		Boards:           len(c.slots),
		SparesLeft:       len(c.spares),
		Sessions:         len(c.sessionKey),
		Failovers:        c.counters.failovers,
		FailoverFails:    c.counters.failoverFails,
		HealthProbes:     c.counters.healthProbes,
		ProbeFails:       c.counters.probeFails,
		AdmissionRejects: c.counters.admissionRejects,
		RestoredConns:    c.counters.restoredConns,
		ReplayedPaths:    c.counters.replayedPaths,
		RestoreUs:        c.counters.restoreUs,
		Slots:            make(map[string]protocol.BoardStatsMsg, len(c.slots)),
	}
	c.mu.Unlock()
	for _, sl := range c.slots {
		sl.mu.Lock()
		b, w, epoch, down := sl.b, sl.worker, sl.epoch, sl.down
		nSessions := len(sl.sessions)
		sl.mu.Unlock()
		if down {
			out.DownSlots++
		}
		entry := protocol.BoardStatsMsg{Epoch: epoch, Healthy: !down, Sessions: nSessions}
		if b != nil {
			entry.Board = b.name
			hc := b.hw.Counters()
			entry.HW = protocol.BoardHWMsg{
				FullConfigs:    hc.FullConfigs,
				PartialConfigs: hc.PartialConfigs,
				FramesWritten:  hc.FramesWritten,
				BytesWritten:   hc.BytesWritten,
			}
		}
		if w != nil {
			entry.Worker = w.StatsSnapshot()
		}
		out.Slots[fmt.Sprintf("slot%d", sl.idx)] = entry
	}
	return out
}

// Shutdown stops probing and failover, drains every worker (live and
// graveyard), and tears down the board links. Callers must guarantee no
// Submit is in flight — the daemon calls this only after its connection
// handlers have exited.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	// Stop the probe loop before closing the failover channel: probes are
	// a failover-request producer.
	close(c.stopProbe)
	<-c.probeDone
	close(c.failoverCh)
	<-c.failoverDone

	var workers []*server.Worker
	var boards []*board
	for _, sl := range c.slots {
		sl.mu.Lock()
		if sl.worker != nil {
			workers = append(workers, sl.worker)
		}
		if sl.b != nil {
			boards = append(boards, sl.b)
		}
		sl.mu.Unlock()
	}
	c.mu.Lock()
	workers = append(workers, c.graveyard...)
	boards = append(boards, c.spares...)
	boards = append(boards, c.deadBoards...)
	c.mu.Unlock()

	for _, w := range workers {
		w.Close()
	}
	var err error
	for _, w := range workers {
		select {
		case <-w.Done():
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("fleet: shutdown deadline exceeded draining %s", w.Name())
			}
		}
	}
	for _, b := range boards {
		_ = b.raw.Close()
	}
	return err
}
