package fleet_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/jbits"
	"repro/internal/server"
	"repro/internal/server/fleet"
	"repro/internal/server/protocol"
)

func pin(r, c int, w arch.Wire) server.EndPointMsg {
	return server.EndPointMsg{Pin: &server.PinMsg{Row: r, Col: c, Wire: int(w)}}
}

func newFleet(t *testing.T, cfg fleet.Config) *fleet.Coordinator {
	t.Helper()
	if cfg.Rows == 0 {
		cfg.Rows, cfg.Cols = 16, 24
	}
	c, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c
}

// connect admits a session with an explicit placement key.
func connect(t *testing.T, c *fleet.Coordinator, name string, key uint64) *server.Response {
	t.Helper()
	resp := c.Submit(context.Background(), &server.Request{Op: "connect", Session: name, Key: &key})
	if resp.Err != "" {
		t.Fatalf("connect %s: %s (%s)", name, resp.Err, resp.ErrorCode)
	}
	return resp
}

// waitEpoch polls until slot's epoch reaches want (failover is async).
func waitEpoch(t *testing.T, c *fleet.Coordinator, slot int, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Epoch(slot) >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("slot %d never reached epoch %d (at %d)", slot, want, c.Epoch(slot))
}

// TestPlacementDeterministic: placement is a pure function of (key, fleet
// size), and the default key is FNV-1a of the session name.
func TestPlacementDeterministic(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 4})
	boards := make(map[string]string)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("sess%d", i)
		resp := c.Submit(context.Background(), &server.Request{Op: "connect", Session: name})
		if resp.Err != "" {
			t.Fatalf("connect %s: %s", name, resp.Err)
		}
		boards[name] = resp.Board
		want := fmt.Sprintf("board%d", fleet.PlacementKey(name)%4)
		if resp.Board != want {
			t.Errorf("%s placed on %s, want %s", name, resp.Board, want)
		}
	}
	// Reconnecting lands on the same board.
	for name, b := range boards {
		resp := c.Submit(context.Background(), &server.Request{Op: "connect", Session: name})
		if resp.Err != "" || resp.Board != b {
			t.Errorf("%s reconnect: board %s err %q, want %s", name, resp.Board, resp.Err, b)
		}
	}
}

// TestAdmissionControl: a slot at its session cap rejects new sessions with
// the typed admission code; other slots still admit.
func TestAdmissionControl(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 2, SessionCap: 1})
	connect(t, c, "first", 0)
	resp := c.Submit(context.Background(), &server.Request{Op: "connect", Session: "second", Key: keyp(2)})
	if resp.ErrorCode != protocol.CodeAdmission {
		t.Fatalf("second session on full slot: code %q err %q, want %q",
			resp.ErrorCode, resp.Err, protocol.CodeAdmission)
	}
	// Slot 1 has room.
	connect(t, c, "third", 1)
	if got := c.Stats().AdmissionRejects; got != 1 {
		t.Errorf("admission_rejects = %d, want 1", got)
	}
	// A rejected session is not dispatchable.
	r := c.Submit(context.Background(), &server.Request{Op: "trace", Session: "second", Source: sp(pin(5, 7, arch.S1YQ))})
	if r.ErrorCode != protocol.CodeNoDevice {
		t.Errorf("op on rejected session: code %q, want %q", r.ErrorCode, protocol.CodeNoDevice)
	}
}

func keyp(k uint64) *uint64 { return &k }

func sp(m server.EndPointMsg) *server.EndPointMsg { return &m }

// TestFailoverReplaysAckedState is the core failover contract: a board dies
// mid-RouteFanout (seeded fault injection on its link), the coordinator
// replays the journal onto the spare, and every acknowledged connection —
// point-to-point, fanout, and a core instance — survives, replayed from its
// cached path and audited clean by the oracle.
func TestFailoverReplaysAckedState(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 2, Spares: 1})
	ctx := context.Background()
	connect(t, c, "victim", 0)
	connect(t, c, "bystander", 1)

	// Acknowledged working set on slot 0: one net, one fanout, one core.
	route := func(sess string, src server.EndPointMsg, sinks ...server.EndPointMsg) *server.Response {
		return c.Submit(ctx, &server.Request{Op: "route", Session: sess, Source: &src, Sinks: sinks})
	}
	if r := route("victim", pin(5, 7, arch.S1YQ), pin(6, 8, arch.S0F3)); r.Err != "" {
		t.Fatalf("route: %s", r.Err)
	}
	if r := route("victim", pin(2, 3, arch.S0YQ), pin(4, 6, arch.S1F2), pin(1, 9, arch.S0F1), pin(6, 2, arch.S1F4)); r.Err != "" {
		t.Fatalf("fanout: %s", r.Err)
	}
	k := uint64(3)
	if r := c.Submit(ctx, &server.Request{Op: "core_new", Session: "victim",
		Core: &server.CoreMsg{Name: "mul", Kind: "constmul", Row: 10, Col: 14, K: &k, KBits: 2}}); r.Err != "" {
		t.Fatalf("core_new: %s", r.Err)
	}
	if r := route("bystander", pin(8, 12, arch.S1YQ), pin(9, 13, arch.S0F3)); r.Err != "" {
		t.Fatalf("bystander route: %s", r.Err)
	}

	// The board dies mid-run: every subsequent link write is dropped.
	if err := c.FaultLink(0, jbits.FaultOptions{Seed: 7, PDrop: 1}); err != nil {
		t.Fatal(err)
	}
	r := route("victim", pin(12, 4, arch.S1YQ), pin(13, 6, arch.S0F3), pin(11, 8, arch.S1F1))
	if r.ErrorCode != protocol.CodeFailover {
		t.Fatalf("route over dead link: code %q err %q, want %q", r.ErrorCode, r.Err, protocol.CodeFailover)
	}
	waitEpoch(t, c, 0, 2)

	// The failed (unacknowledged) op retries clean on the spare.
	r = route("victim", pin(12, 4, arch.S1YQ), pin(13, 6, arch.S0F3), pin(11, 8, arch.S1F1))
	if r.Err != "" {
		t.Fatalf("retry after failover: %s (%s)", r.Err, r.ErrorCode)
	}
	if r.Board != "spare0" || r.Epoch != 2 {
		t.Errorf("retry served by %s epoch %d, want spare0 epoch 2", r.Board, r.Epoch)
	}

	// Every acknowledged connection survived onto the spare.
	for _, src := range []server.EndPointMsg{pin(5, 7, arch.S1YQ), pin(2, 3, arch.S0YQ)} {
		tr := c.Submit(ctx, &server.Request{Op: "trace", Session: "victim", Source: &src})
		if tr.Err != "" || tr.Net == nil || len(tr.Net.Sinks) == 0 {
			t.Errorf("acked connection lost after failover: trace %v -> %q, net %+v", src.Pin, tr.Err, tr.Net)
		}
	}
	// The core instance too: its output port is traceable by name.
	tr := c.Submit(ctx, &server.Request{Op: "trace", Session: "victim",
		Source: &server.EndPointMsg{Port: &server.PortRefMsg{Core: "mul", Group: "p", Index: 0}}})
	if tr.Err != "" {
		t.Errorf("core lost after failover: %s", tr.Err)
	}

	// The bystander slot never noticed.
	tr = c.Submit(ctx, &server.Request{Op: "trace", Session: "bystander", Source: sp(pin(8, 12, arch.S1YQ))})
	if tr.Err != "" || tr.Epoch != 1 {
		t.Errorf("bystander disturbed: err %q epoch %d", tr.Err, tr.Epoch)
	}

	// Health probes pass on the replacement, and the counters add up.
	c.ProbeAll(ctx)
	st := c.Stats()
	if st.Failovers != 1 || st.SparesLeft != 0 {
		t.Errorf("failovers=%d spares_left=%d, want 1/0", st.Failovers, st.SparesLeft)
	}
	if st.RestoredConns == 0 {
		t.Error("no connections counted as restored")
	}
	if st.ReplayedPaths == 0 {
		t.Error("no restores served by cached-path replay")
	}
	if st.ProbeFails != 0 {
		t.Errorf("probe_fails = %d on the replacement board", st.ProbeFails)
	}
}

// TestNoSpareLeft: a board death with no spares marks the slot down; ops
// get the typed board-down code, and other slots keep serving.
func TestNoSpareLeft(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 2})
	ctx := context.Background()
	connect(t, c, "doomed", 0)
	connect(t, c, "fine", 1)
	if err := c.KillBoard(0); err != nil {
		t.Fatal(err)
	}
	src := pin(5, 7, arch.S1YQ)
	r := c.Submit(ctx, &server.Request{Op: "route", Session: "doomed", Source: &src, Sinks: []server.EndPointMsg{pin(6, 8, arch.S0F3)}})
	if r.ErrorCode != protocol.CodeFailover {
		t.Fatalf("route on killed board: code %q, want %q", r.ErrorCode, protocol.CodeFailover)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && c.Stats().DownSlots == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	if st.DownSlots != 1 || st.FailoverFails != 1 {
		t.Fatalf("down_slots=%d failover_fails=%d, want 1/1", st.DownSlots, st.FailoverFails)
	}
	r = c.Submit(ctx, &server.Request{Op: "route", Session: "doomed", Source: &src, Sinks: []server.EndPointMsg{pin(6, 8, arch.S0F3)}})
	if r.ErrorCode != protocol.CodeBoardDown {
		t.Errorf("op on down slot: code %q, want %q", r.ErrorCode, protocol.CodeBoardDown)
	}
	r2 := c.Submit(ctx, &server.Request{Op: "route", Session: "fine", Source: sp(pin(8, 12, arch.S1YQ)), Sinks: []server.EndPointMsg{pin(9, 13, arch.S0F3)}})
	if r2.Err != "" {
		t.Errorf("healthy slot affected: %s", r2.Err)
	}
}

// TestConcurrentChurnSurvivesKill hammers the fleet from concurrent
// sessions, kills a board mid-run, and verifies that every acknowledged
// route is still traceable afterwards — zero lost acked ops. Run with
// -race in CI, it also drains cleanly through Shutdown.
func TestConcurrentChurnSurvivesKill(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 2, Spares: 1})
	ctx := context.Background()

	// Sessions pinned to slots by explicit key; disjoint row bands keep
	// sessions sharing a slot (and therefore a device) out of each other's
	// way, and one net per row keeps the nets themselves conflict-free.
	sessions := []struct {
		name    string
		key     uint64
		baseRow int
	}{
		{"s0", 0, 2},
		{"s1", 1, 2},
		{"s2", 2, 8},
		{"s3", 3, 8},
	}
	for _, s := range sessions {
		connect(t, c, s.name, s.key)
	}

	type acked struct {
		sess string
		src  server.EndPointMsg
	}
	var mu sync.Mutex
	var survivors []acked

	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(name string, baseRow int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				src := pin(baseRow+i, 3+2*i, arch.S1YQ)
				sink := pin(baseRow+i, 5+2*i, arch.S0F3)
				// Retry through failover; give up only on hard errors.
				for attempt := 0; attempt < 50; attempt++ {
					r := c.Submit(ctx, &server.Request{Op: "route", Session: name,
						Source: &src, Sinks: []server.EndPointMsg{sink}})
					if r.Err == "" {
						mu.Lock()
						survivors = append(survivors, acked{name, src})
						mu.Unlock()
						break
					}
					if r.ErrorCode == protocol.CodeFailover || r.ErrorCode == protocol.CodeBusy {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					t.Errorf("%s route %d: %s (%s)", name, i, r.Err, r.ErrorCode)
					break
				}
				if name == "s0" && i == 2 {
					_ = c.KillBoard(0) // board dies mid-churn
				}
			}
		}(s.name, s.baseRow)
	}
	wg.Wait()

	waitEpoch(t, c, 0, 2)
	for _, a := range survivors {
		tr := c.Submit(ctx, &server.Request{Op: "trace", Session: a.sess, Source: &a.src})
		if tr.Err != "" || tr.Net == nil || len(tr.Net.Sinks) == 0 {
			t.Errorf("acked route lost: %s %v (err %q)", a.sess, a.src.Pin, tr.Err)
		}
	}
	st := c.Stats()
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
	t.Logf("%d acked routes, all survived the kill (failovers=%d restored=%d replayed=%d)",
		len(survivors), st.Failovers, st.RestoredConns, st.ReplayedPaths)
}

// TestProbeDetectsSilentDeath: a board that dies without any op traffic is
// caught by the health probe and failed over.
func TestProbeDetectsSilentDeath(t *testing.T) {
	c := newFleet(t, fleet.Config{Boards: 1, Spares: 1})
	ctx := context.Background()
	connect(t, c, "only", 0)
	src := pin(5, 7, arch.S1YQ)
	if r := c.Submit(ctx, &server.Request{Op: "route", Session: "only", Source: &src,
		Sinks: []server.EndPointMsg{pin(6, 8, arch.S0F3)}}); r.Err != "" {
		t.Fatal(r.Err)
	}
	if err := c.KillBoard(0); err != nil {
		t.Fatal(err)
	}
	c.ProbeAll(ctx) // no client traffic — only the probe can notice
	waitEpoch(t, c, 0, 2)
	st := c.Stats()
	if st.ProbeFails == 0 || st.Failovers != 1 {
		t.Fatalf("probe_fails=%d failovers=%d, want >0/1", st.ProbeFails, st.Failovers)
	}
	tr := c.Submit(ctx, &server.Request{Op: "trace", Session: "only", Source: &src})
	if tr.Err != "" || len(tr.Net.Sinks) != 1 {
		t.Errorf("acked route lost across probe-driven failover: %q %+v", tr.Err, tr.Net)
	}
}
