package server_test

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/core/library"
	"repro/internal/cores"
	"repro/internal/server"
	"repro/internal/server/client"
)

// stdlibLibrary learns the stdlib wiring manifest for the test geometry.
func stdlibLibrary(t *testing.T) *library.Library {
	t.Helper()
	b := library.NewBuilder("virtex", 16, 24)
	if _, err := cores.LearnStdlib(arch.NewVirtex(), 16, 24, b); err != nil {
		t.Fatal(err)
	}
	return b.Library()
}

// TestServiceLibraryStats: a daemon seeded with a template library
// reports the library counters through statsz — seeded entries appear at
// boot (before any op folds a delta in), and a core instantiation that
// stitches from the library moves the hit counter.
func TestServiceLibraryStats(t *testing.T) {
	ctx := context.Background()
	lib := stdlibLibrary(t)
	addr, _ := startDaemon(t, server.Options{Library: lib}, "dev")
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := stats.Sessions["dev"]
	if !ok {
		t.Fatal("statsz missing session")
	}
	if ss.LibrarySeeded != lib.Len() {
		t.Errorf("library_seeded = %d at boot, want %d", ss.LibrarySeeded, lib.Len())
	}
	if ss.LibraryHits != 0 {
		t.Errorf("library_hits = %d before any traffic", ss.LibraryHits)
	}

	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.NewCore(ctx, server.CoreMsg{Name: "ctr", Kind: "counter", Row: 3, Col: 4, Bits: 4}); err != nil {
		t.Fatal(err)
	}
	stats, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Sessions["dev"].LibraryHits; got == 0 {
		t.Error("core instantiation on a seeded daemon never hit the library")
	}

	// A route whose shape the stdlib manifest never learned counts a miss.
	if err := s.Route(ctx, client.Pin(core.NewPin(12, 18, arch.S1YQ)),
		client.Pin(core.NewPin(13, 20, arch.S0F3))); err != nil {
		t.Fatal(err)
	}
	stats, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Sessions["dev"].LibraryMisses; got == 0 {
		t.Error("library_misses never moved on a seeded daemon")
	}
}
