package server

import (
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// histBuckets is the number of power-of-two latency buckets; bucket i
// covers [2^i, 2^(i+1)) microseconds, bucket 0 also absorbs sub-µs ops.
const histBuckets = 28

// latencyHist is a log2 histogram over microseconds.
type latencyHist struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     time.Duration
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	if us > 0 {
		i = int(math.Ilogb(float64(us)))
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += d
}

// quantile returns the upper bound (in µs) of the bucket holding the q'th
// quantile observation.
func (h *latencyHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, b := range h.buckets {
		seen += b
		if seen > target {
			return math.Pow(2, float64(i+1))
		}
	}
	return math.Pow(2, histBuckets)
}

func (h *latencyHist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum.Microseconds()) / float64(h.count)
}

// opMetrics is one operation's counters.
type opMetrics struct {
	count  uint64
	errors uint64
	hist   latencyHist
}

// sessionMetrics collects one device session's counters. The worker
// goroutine writes; statsz readers snapshot under the mutex.
type sessionMetrics struct {
	mu                sync.Mutex
	routes            int
	ripUps            int
	batchIterations   int
	cacheHits         int
	cacheMisses       int
	replayFails       int
	nodesExplored     int
	libraryHits       int
	libraryMisses     int
	librarySeeded     int
	librarySkipped    int
	partitionRegions  int
	partitionCrossing int
	regionIterations  int
	globalIterations  int
	connections       int // live connection records (absolute, not a delta)
	framesShipped     int
	bytesShipped      int
	ops               map[string]*opMetrics
}

func newSessionMetrics() *sessionMetrics {
	return &sessionMetrics{ops: make(map[string]*opMetrics)}
}

func (m *sessionMetrics) observe(op string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	om := m.ops[op]
	if om == nil {
		om = &opMetrics{}
		m.ops[op] = om
	}
	om.count++
	if failed {
		om.errors++
	}
	om.hist.observe(d)
}

// addRouterDelta folds one op's router-stat delta (after.Sub(before))
// into the session counters; connections is the router's live record
// count *after* the op (stored absolute). Called from the worker
// goroutine, which owns the router, so statsz readers never touch router
// state directly.
func (m *sessionMetrics) addRouterDelta(d core.Stats, connections int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes += d.Routes
	m.ripUps += d.PIPsCleared
	m.batchIterations += d.BatchIterations
	m.cacheHits += d.CacheHits
	m.cacheMisses += d.CacheMisses
	m.replayFails += d.ReplayFails
	m.nodesExplored += d.NodesExplored
	m.libraryHits += d.LibraryHits
	m.libraryMisses += d.LibraryMisses
	m.librarySeeded += d.LibrarySeeded
	m.librarySkipped += d.LibrarySkipped
	m.partitionRegions += d.PartitionRegions
	m.partitionCrossing += d.PartitionCrossing
	m.regionIterations += d.RegionIterations
	m.globalIterations += d.GlobalIterations
	m.connections = connections
}

func (m *sessionMetrics) addShipped(frames, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.framesShipped += frames
	m.bytesShipped += bytes
}

func (m *sessionMetrics) snapshot(queueDepth int) SessionStatsMsg {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := SessionStatsMsg{
		Routes:            m.routes,
		RipUps:            m.ripUps,
		BatchIterations:   m.batchIterations,
		CacheHits:         m.cacheHits,
		CacheMisses:       m.cacheMisses,
		ReplayFails:       m.replayFails,
		NodesExplored:     m.nodesExplored,
		LibraryHits:       m.libraryHits,
		LibraryMisses:     m.libraryMisses,
		LibrarySeeded:     m.librarySeeded,
		LibrarySkipped:    m.librarySkipped,
		PartitionRegions:  m.partitionRegions,
		PartitionCrossing: m.partitionCrossing,
		RegionIterations:  m.regionIterations,
		GlobalIterations:  m.globalIterations,
		Connections:       m.connections,
		FramesShipped:     m.framesShipped,
		BytesShipped:      m.bytesShipped,
		QueueDepth:        queueDepth,
		Ops:               make(map[string]OpStatsMsg, len(m.ops)),
	}
	for op, om := range m.ops {
		out.Ops[op] = OpStatsMsg{
			Count:  om.count,
			Errors: om.errors,
			P50us:  om.hist.quantile(0.50),
			P99us:  om.hist.quantile(0.99),
			Meanus: om.hist.mean(),
		}
	}
	return out
}
