package server

import (
	"time"

	"repro/internal/core"
	"repro/internal/core/library"
)

// Opt is a functional option for NewServer. The Options struct stays the
// internal representation (and New(Options) keeps working); these
// constructors are the composable surface the CLIs use.
type Opt func(*Options)

// NewServer creates an empty daemon from functional options.
func NewServer(opts ...Opt) *Server {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return New(o)
}

// WithQueueDepth bounds each session's request queue.
func WithQueueDepth(n int) Opt { return func(o *Options) { o.QueueDepth = n } }

// WithParallelism sets the negotiated-batch worker count for every session
// router (0 = GOMAXPROCS).
func WithParallelism(n int) Opt { return func(o *Options) { o.Parallelism = n } }

// WithRouteCache sets the route-cache mode for every session router.
func WithRouteCache(m core.CacheMode) Opt { return func(o *Options) { o.RouteCache = m } }

// WithEnqueueTimeout bounds how long a request waits for a queue slot
// before the busy response.
func WithEnqueueTimeout(d time.Duration) Opt { return func(o *Options) { o.EnqueueTimeout = d } }

// WithParanoidVerify makes every session router audit each automatic
// routing op with the bitstream oracle before acknowledging it.
func WithParanoidVerify(on bool) Opt { return func(o *Options) { o.ParanoidVerify = on } }

// WithBinaryProtocol toggles the binary v3 framing capability (default
// on). With it off the daemon neither advertises nor accepts "binv3" and
// every connection stays on framed JSON v2.
func WithBinaryProtocol(on bool) Opt { return func(o *Options) { o.DisableBinary = !on } }

// WithLibrary seeds every session router with a persistent route-template
// library, shared read-only across workers (audited once in New).
func WithLibrary(lib *library.Library) Opt { return func(o *Options) { o.Library = lib } }

// WithLibraryPath loads the template library from a file at daemon
// construction, best-effort: a missing or unreadable file leaves the
// sessions library-less. Use WithLibrary with an explicitly loaded
// library to fail loudly instead.
func WithLibraryPath(path string) Opt { return func(o *Options) { o.LibraryPath = path } }

// WithAuth installs a hello-token authenticator: fn maps the bearer token
// from each connection's hello to a tenant name, or errors to reject the
// handshake with the unauthorized code. The gateway tier uses this; plain
// daemons leave it nil and admit everyone as the anonymous tenant.
func WithAuth(fn func(token string) (tenant string, err error)) Opt {
	return func(o *Options) { o.Auth = fn }
}
