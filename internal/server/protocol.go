// Package server implements jrouted: a long-running routing daemon hosting
// many named devices, each wrapped in a worker session with its own JRoute
// router, serving the full JRoute surface — connect, route, unroute, trace,
// batch/bus routing, core instantiation and replacement, and
// partial-bitstream readback — over the framed JSON protocol defined in
// internal/server/protocol (which shares the XHWIF frame format; see
// internal/jbits).
//
// Concurrency model: every device session owns one worker goroutine and a
// bounded request queue. Requests against one session are serialized in
// arrival order; requests against different sessions run concurrently. A
// full queue pushes back: the submitter waits up to the enqueue timeout —
// bounded further by the request's own deadline — and then receives a busy
// response, which clients surface as ErrBusy. A request whose context is
// canceled or expired while queued is rejected with a typed error code
// (CodeCanceled / CodeDeadline) instead of blocking or executing late.
//
// Partial-reconfiguration push: every mutating operation's response carries
// the configuration frames the operation dirtied, so a thin client can
// mirror the server's bitstream incrementally without ever pulling a full
// readback.
//
// Fleet mode: a coordinator (internal/server/fleet) may be attached with
// SetFleet, in which case per-device ops are sharded over a board fleet
// with health checks and automatic failover; see that package.
package server

import "repro/internal/server/protocol"

// The wire types live in internal/server/protocol; these aliases keep the
// historical server.Request / server.Response spelling working for existing
// callers while the protocol package remains the single source of truth.
type (
	Request         = protocol.Request
	Response        = protocol.Response
	HelloMsg        = protocol.HelloMsg
	PinMsg          = protocol.PinMsg
	PortRefMsg      = protocol.PortRefMsg
	EndPointMsg     = protocol.EndPointMsg
	NetMsg          = protocol.NetMsg
	PipMsg          = protocol.PipMsg
	CoreMsg         = protocol.CoreMsg
	StatsMsg        = protocol.StatsMsg
	SessionStatsMsg = protocol.SessionStatsMsg
	OpStatsMsg      = protocol.OpStatsMsg
	FleetStatsMsg   = protocol.FleetStatsMsg
	BoardStatsMsg   = protocol.BoardStatsMsg
	BoardHWMsg      = protocol.BoardHWMsg

	GatewayStatsMsg   = protocol.GatewayStatsMsg
	GatewayTenantMsg  = protocol.GatewayTenantMsg
	GatewayBackendMsg = protocol.GatewayBackendMsg
)

// OpService is re-exported from the protocol package.
const OpService = protocol.OpService
