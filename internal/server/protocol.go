// Package server implements jrouted: a long-running routing daemon hosting
// many named devices, each wrapped in a session with its own JRoute router,
// serving the full JRoute surface — connect, route, unroute, trace,
// batch/bus routing, core instantiation and replacement, and
// partial-bitstream readback — over a framed JSON-over-TCP protocol that
// shares the XHWIF frame format (u8 opcode, u32 length, payload; see
// internal/jbits).
//
// Concurrency model: every device session owns one worker goroutine and a
// bounded request queue. Requests against one session are serialized in
// arrival order; requests against different sessions run concurrently. A
// full queue pushes back: the submitter waits up to the enqueue timeout and
// then receives a busy response, which clients surface as ErrBusy.
//
// Partial-reconfiguration push: every mutating operation's response carries
// the configuration frames the operation dirtied, so a thin client can
// mirror the server's bitstream incrementally without ever pulling a full
// readback.
package server

// OpService is the XHWIF-format frame opcode carrying a JSON service
// request; responses echo it with jbits.RespFlag set.
const OpService = 0x10

// Request is one service call. Op selects the operation; Session names the
// device session every per-device op targets.
//
// Ops and their fields:
//
//	devices          ()                         -> Devices
//	connect          (Session)                  -> Rows, Cols, Arch, Config
//	route            (Session, Source, Sinks)   RouteNet / RouteFanout
//	bus              (Session, Sources, Sinks)  greedy RouteBus
//	bus_batch        (Session, Sources, Sinks)  negotiated RouteBusBatch
//	batch            (Session, Nets)            negotiated RouteBatch
//	unroute          (Session, Source)
//	reverse_unroute  (Session, Source)          source = the sink pin
//	trace            (Session, Source)          -> Net
//	reverse_trace    (Session, Source)          -> Net
//	core_new         (Session, Core)            instantiate + implement
//	core_replace     (Session, Core)            §3.3 replace flow
//	readback         (Session)                  -> Config
//	statsz           ()                         -> Stats
//
// Mutating ops (route, bus, bus_batch, batch, unroute, reverse_unroute,
// core_new, core_replace) return the dirtied frames in Frames.
type Request struct {
	ID      uint64        `json:"id"`
	Op      string        `json:"op"`
	Session string        `json:"session,omitempty"`
	Source  *EndPointMsg  `json:"source,omitempty"`
	Sinks   []EndPointMsg `json:"sinks,omitempty"`
	Sources []EndPointMsg `json:"sources,omitempty"`
	Nets    []NetMsg      `json:"nets,omitempty"`
	Core    *CoreMsg      `json:"core,omitempty"`
}

// Response answers one Request, matched by ID.
type Response struct {
	ID   uint64 `json:"id"`
	Err  string `json:"err,omitempty"`
	Busy bool   `json:"busy,omitempty"` // backpressure: queue full, retry later

	// connect / devices
	Rows    int      `json:"rows,omitempty"`
	Cols    int      `json:"cols,omitempty"`
	Arch    string   `json:"arch,omitempty"`
	Devices []string `json:"devices,omitempty"`

	// Config is a full configuration stream (connect, readback).
	Config []byte `json:"config,omitempty"`

	// Frames is the partial stream of configuration frames dirtied by a
	// mutating op; FrameN counts them. Applying Frames to an up-to-date
	// mirror reproduces the server's bitstream exactly.
	Frames []byte `json:"frames,omitempty"`
	FrameN int    `json:"frame_n,omitempty"`

	Net   *NetMsg   `json:"net,omitempty"`   // trace results
	Stats *StatsMsg `json:"stats,omitempty"` // statsz
}

// PinMsg is a physical pin on the wire: row, column, and the
// architecture-independent wire number.
type PinMsg struct {
	Row  int `json:"row"`
	Col  int `json:"col"`
	Wire int `json:"wire"`
}

// PortRefMsg names a port of a server-side core instance.
type PortRefMsg struct {
	Core  string `json:"core"`
	Group string `json:"group"`
	Index int    `json:"index"`
}

// EndPointMsg is the wire form of core.EndPoint: exactly one of Pin or
// Port is set.
type EndPointMsg struct {
	Pin  *PinMsg     `json:"pin,omitempty"`
	Port *PortRefMsg `json:"port,omitempty"`
}

// NetMsg is one net: a source and its sinks. It doubles as the trace
// result, where Pips carries the net's PIPs in breadth-first order.
type NetMsg struct {
	Source EndPointMsg   `json:"source"`
	Sinks  []EndPointMsg `json:"sinks,omitempty"`
	Pips   []PipMsg      `json:"pips,omitempty"`
}

// PipMsg is one programmable interconnect point on the wire.
type PipMsg struct {
	Row  int `json:"row"`
	Col  int `json:"col"`
	From int `json:"from"`
	To   int `json:"to"`
}

// CoreMsg describes a core instance for core_new / core_replace. Kind
// selects the library core; the parameter fields used depend on it:
//
//	constmul: K, KBits      (replace retunes K)
//	register: Bits
type CoreMsg struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind,omitempty"`
	Row   int     `json:"row"`
	Col   int     `json:"col"`
	K     *uint64 `json:"k,omitempty"`
	KBits int     `json:"kbits,omitempty"`
	Bits  int     `json:"bits,omitempty"`
}

// StatsMsg is the statsz payload: per-session counters and per-op latency
// histograms.
type StatsMsg struct {
	Sessions map[string]SessionStatsMsg `json:"sessions"`
}

// SessionStatsMsg aggregates one device session.
type SessionStatsMsg struct {
	Routes          int                   `json:"routes"`
	RipUps          int                   `json:"rip_ups"` // PIPs ripped up (cleared)
	BatchIterations int                   `json:"batch_iterations"`
	CacheHits       int                   `json:"cache_hits"`   // routes served by path replay
	CacheMisses     int                   `json:"cache_misses"` // cache lookups without an entry
	ReplayFails     int                   `json:"replay_fails"` // replays that fell back to search
	Connections     int                   `json:"connections"`  // live connection records
	FramesShipped   int                   `json:"frames_shipped"`
	BytesShipped    int                   `json:"bytes_shipped"`
	QueueDepth      int                   `json:"queue_depth"`
	Ops             map[string]OpStatsMsg `json:"ops"`
}

// OpStatsMsg is one operation's count and latency distribution.
type OpStatsMsg struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	Meanus float64 `json:"mean_us"`
}
