// Package protocol defines the wire surface of the jrouted routing service:
// the framed JSON messages carried over the XHWIF frame format (u8 opcode,
// u32 length, payload; see internal/jbits), the protocol version handshake,
// and the structured error codes responses carry. It is imported by the
// server, the fleet coordinator, and the thin client, and holds no
// behaviour — only the contract.
//
// # Versioning
//
// Every connection must open with a "hello" request declaring the protocol
// version the client speaks. The server answers with its own version and
// capability flags ("fleet", "paranoid"); a mismatched version — or any
// other op sent before hello — is rejected with ErrorCode CodeVersion, so
// pre-v2 clients get one clear typed error instead of undefined behaviour
// mid-session.
//
// # Error codes
//
// Responses carry a machine-readable ErrorCode alongside the human Err
// text. Clients branch on the code (retry on CodeFailover, surface
// CodeCanceled as a context error, ...) instead of parsing error strings.
package protocol

// Version is the protocol version this tree speaks. Version 2 added the
// hello handshake, structured error codes, request deadlines, and the
// fleet extensions (placement keys, board epochs, fleet statsz).
const Version = 2

// OpService is the XHWIF-format frame opcode carrying a JSON service
// request; responses echo it with jbits.RespFlag set.
const OpService = 0x10

// Capability flags a server may advertise in its hello response.
const (
	// CapFleet: the daemon runs fleet mode — sessions are sharded over a
	// board fleet with health-checked automatic failover.
	CapFleet = "fleet"
	// CapParanoid: every automatic routing op is audited by the bitstream
	// oracle before it is acknowledged.
	CapParanoid = "paranoid"
	// CapBinV3: the server accepts the compact binary v3 framing
	// (internal/server/protocol/v3) on this connection. A client that also
	// echoes the flag in its hello request switches the connection to v3
	// immediately after the (always-JSON) hello exchange; clients that do
	// not echo it keep speaking framed JSON v2 unmodified.
	CapBinV3 = "binv3"
)

// Error codes. The empty string means success.
const (
	// CodeBadRequest: the request was malformed (unparseable JSON, missing
	// endpoint, core description, ...).
	CodeBadRequest = "bad_request"
	// CodeUnknownOp: the op name is not part of the protocol.
	CodeUnknownOp = "unknown_op"
	// CodeVersion: protocol version mismatch, or an op sent before the
	// hello handshake.
	CodeVersion = "version_mismatch"
	// CodeNoDevice: the named device session does not exist.
	CodeNoDevice = "no_device"
	// CodeBusy: backpressure — the session queue stayed full past the
	// enqueue timeout. Retryable.
	CodeBusy = "busy"
	// CodeCanceled: the request's context was canceled while the op was
	// queued; the op was rejected without executing.
	CodeCanceled = "canceled"
	// CodeDeadline: the request's deadline expired while the op waited in
	// the bounded queue.
	CodeDeadline = "deadline"
	// CodeAdmission: fleet admission control rejected a new session (the
	// target board is at its session cap).
	CodeAdmission = "admission"
	// CodeBoardDown: the session's board is dead and no spare is left to
	// fail over to.
	CodeBoardDown = "board_down"
	// CodeFailover: the op raced a board death; its board is being (or has
	// just been) replaced by a spare. Acknowledged state is preserved;
	// retry the op.
	CodeFailover = "failover"
	// CodeRoute: the routing op itself failed (contention, bad endpoint,
	// unrouted net, ...). Not retryable without changing the request.
	CodeRoute = "route"
	// CodeInternal: serialization or device-state failure inside the
	// server.
	CodeInternal = "internal"
	// CodeMalformed: a binary v3 frame failed the pre-parse filter (bad
	// magic, wrong version, oversized length) or its payload did not
	// decode. The frame was rejected before dispatch; the connection stays
	// usable.
	CodeMalformed = "malformed"
	// CodeUnauthorized: the hello bearer token was missing or unknown, or
	// an op targeted a session owned by a different tenant. Gateway tier
	// only; daemons without an authenticator never emit it.
	CodeUnauthorized = "unauthorized"
	// CodeQuota: a tenant quota rejected the request — the tenant is at its
	// session cap (connect) or its ops/s token bucket is empty (any op).
	// Rate rejections are retryable after a pause.
	CodeQuota = "quota_exceeded"
	// CodeUnknownAlias: connect named a device-class alias no registered
	// backend fleet serves. Gateway tier only.
	CodeUnknownAlias = "unknown_alias"
)

// HelloMsg is the handshake payload, both directions: the client announces
// the version it speaks (and, against an authenticating gateway, its
// bearer token); the server answers with its version and the capabilities
// it serves.
type HelloMsg struct {
	Version int      `json:"version"`
	Caps    []string `json:"caps,omitempty"`
	// Token is the tenant bearer token, client to server only. Servers
	// without an authenticator ignore it; an authenticating gateway maps
	// it to a tenant and rejects the hello with CodeUnauthorized when it
	// is missing or unknown.
	Token string `json:"token,omitempty"`
}

// Request is one service call. Op selects the operation; Session names the
// device session every per-device op targets.
//
// Ops and their fields:
//
//	hello            (Hello)                    -> Hello (version handshake)
//	devices          ()                         -> Devices
//	connect          (Session [, Key])          -> Rows, Cols, Arch, Config, Epoch, Board
//	route            (Session, Source, Sinks)   RouteNet / RouteFanout
//	bus              (Session, Sources, Sinks)  greedy RouteBus
//	bus_batch        (Session, Sources, Sinks)  negotiated RouteBusBatch
//	batch            (Session, Nets)            negotiated RouteBatch
//	unroute          (Session, Source)
//	reverse_unroute  (Session, Source)          source = the sink pin
//	trace            (Session, Source)          -> Net
//	reverse_trace    (Session, Source)          -> Net
//	core_new         (Session, Core)            instantiate + implement
//	core_replace     (Session, Core)            §3.3 replace flow
//	readback         (Session)                  -> Config
//	statsz           ()                         -> Stats
//	gw_drain         (Session = backend name)   gateway tier only: drain a
//	                                            backend fleet with journal
//	                                            handoff (admin tenants; JSON
//	                                            v2 framing only)
//
// Mutating ops (route, bus, bus_batch, batch, unroute, reverse_unroute,
// core_new, core_replace) return the dirtied frames in Frames.
type Request struct {
	ID      uint64        `json:"id"`
	Op      string        `json:"op"`
	Session string        `json:"session,omitempty"`
	Source  *EndPointMsg  `json:"source,omitempty"`
	Sinks   []EndPointMsg `json:"sinks,omitempty"`
	Sources []EndPointMsg `json:"sources,omitempty"`
	Nets    []NetMsg      `json:"nets,omitempty"`
	Core    *CoreMsg      `json:"core,omitempty"`
	Hello   *HelloMsg     `json:"hello,omitempty"`

	// TimeoutMillis propagates the client context's remaining deadline.
	// The server bounds the op's queue wait (and rejects the op with
	// CodeDeadline / CodeCanceled) by it. 0 means no deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`

	// Key is the fleet placement key for connect: the session is placed on
	// board slot Key mod fleet size. Nil means the key is derived from the
	// session name (FNV-1a), keeping placement a pure function of the
	// name. The gateway tier uses the same key (same FNV-1a default) to
	// pin the session to a backend fleet before the fleet uses it again
	// for board placement.
	Key *uint64 `json:"key,omitempty"`

	// Tenant is the authenticated tenant the connection's hello token
	// resolved to. It never travels on the wire — the server stamps it on
	// every decoded request from per-connection state, so clients cannot
	// spoof it.
	Tenant string `json:"-"`
}

// Response answers one Request, matched by ID.
type Response struct {
	ID  uint64 `json:"id"`
	Err string `json:"err,omitempty"`
	// ErrorCode is the structured code for Err; see the Code constants.
	ErrorCode string `json:"code,omitempty"`
	Busy      bool   `json:"busy,omitempty"` // backpressure: queue full, retry later

	// Hello answers the handshake with the server's version and caps.
	Hello *HelloMsg `json:"hello,omitempty"`

	// connect / devices
	Rows    int      `json:"rows,omitempty"`
	Cols    int      `json:"cols,omitempty"`
	Arch    string   `json:"arch,omitempty"`
	Devices []string `json:"devices,omitempty"`

	// Board names the fleet board currently serving the session (connect
	// responses, fleet mode only).
	Board string `json:"board,omitempty"`

	// Epoch is the serving board's incarnation, bumped on every failover.
	// A client that sees the epoch change mid-session re-seeds its mirror
	// from a readback — the dirty-frame push chain broke at the swap.
	// 0 on static (non-fleet) sessions.
	Epoch uint64 `json:"epoch,omitempty"`

	// Config is a full configuration stream (connect, readback).
	Config []byte `json:"config,omitempty"`

	// Frames is the partial stream of configuration frames dirtied by a
	// mutating op; FrameN counts them. Applying Frames to an up-to-date
	// mirror reproduces the server's bitstream exactly.
	Frames []byte `json:"frames,omitempty"`
	FrameN int    `json:"frame_n,omitempty"`

	Net   *NetMsg   `json:"net,omitempty"`   // trace results
	Stats *StatsMsg `json:"stats,omitempty"` // statsz
}

// PinMsg is a physical pin on the wire: row, column, and the
// architecture-independent wire number.
type PinMsg struct {
	Row  int `json:"row"`
	Col  int `json:"col"`
	Wire int `json:"wire"`
}

// PortRefMsg names a port of a server-side core instance.
type PortRefMsg struct {
	Core  string `json:"core"`
	Group string `json:"group"`
	Index int    `json:"index"`
}

// EndPointMsg is the wire form of core.EndPoint: exactly one of Pin or
// Port is set.
type EndPointMsg struct {
	Pin  *PinMsg     `json:"pin,omitempty"`
	Port *PortRefMsg `json:"port,omitempty"`
}

// NetMsg is one net: a source and its sinks. It doubles as the trace
// result, where Pips carries the net's PIPs in breadth-first order.
type NetMsg struct {
	Source EndPointMsg   `json:"source"`
	Sinks  []EndPointMsg `json:"sinks,omitempty"`
	Pips   []PipMsg      `json:"pips,omitempty"`
}

// PipMsg is one programmable interconnect point on the wire.
type PipMsg struct {
	Row  int `json:"row"`
	Col  int `json:"col"`
	From int `json:"from"`
	To   int `json:"to"`
}

// CoreMsg describes a core instance for core_new / core_replace. Kind
// selects the library core; the parameter fields used depend on it:
//
//	constmul: K, KBits      (replace retunes K)
//	register: Bits
type CoreMsg struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind,omitempty"`
	Row   int     `json:"row"`
	Col   int     `json:"col"`
	K     *uint64 `json:"k,omitempty"`
	KBits int     `json:"kbits,omitempty"`
	Bits  int     `json:"bits,omitempty"`
}

// StatsMsg is the statsz payload: per-session counters and per-op latency
// histograms, plus the fleet section when the daemon runs fleet mode and
// the gateway section when the process is a jgateway edge.
type StatsMsg struct {
	Sessions map[string]SessionStatsMsg `json:"sessions"`
	Fleet    *FleetStatsMsg             `json:"fleet,omitempty"`
	Wire     *WireStatsMsg              `json:"wire,omitempty"`
	Gateway  *GatewayStatsMsg           `json:"gateway,omitempty"`
}

// WireStatsMsg is the transport section of statsz: how many connections
// negotiated each framing, the traffic they moved, and how many frames the
// binary pre-parse filter rejected.
type WireStatsMsg struct {
	ConnsV2     int `json:"conns_v2"`      // connections that stayed on framed JSON
	ConnsV3     int `json:"conns_v3"`      // connections switched to binary v3
	Malformed   int `json:"malformed"`     // v3 frames rejected before dispatch
	FramesIn    int `json:"frames_in"`     // service frames read (both framings)
	FramesOut   int `json:"frames_out"`    // service frames written
	BytesIn     int `json:"bytes_in"`      // payload bytes read
	BytesOut    int `json:"bytes_out"`     // payload bytes written
	FramesV3In  int `json:"frames_v3_in"`  // v3 subset of FramesIn
	FramesV3Out int `json:"frames_v3_out"` // v3 subset of FramesOut
	BytesV3In   int `json:"bytes_v3_in"`
	BytesV3Out  int `json:"bytes_v3_out"`
}

// SessionStatsMsg aggregates one device session.
type SessionStatsMsg struct {
	Routes          int `json:"routes"`
	RipUps          int `json:"rip_ups"` // PIPs ripped up (cleared)
	BatchIterations int `json:"batch_iterations"`
	CacheHits       int `json:"cache_hits"`     // routes served by path replay
	CacheMisses     int `json:"cache_misses"`   // cache lookups without an entry
	ReplayFails     int `json:"replay_fails"`   // replays that fell back to search
	NodesExplored   int `json:"nodes_explored"` // search states expanded (replays expand none)
	// Persistent template-library tier: replays served from the loaded
	// library, template misses while a library was attached, entries
	// seeded at router construction, and entries rejected (failed audit
	// or whole-library arch/geometry mismatch).
	LibraryHits    int `json:"library_hits,omitempty"`
	LibraryMisses  int `json:"library_misses,omitempty"`
	LibrarySeeded  int `json:"library_seeded,omitempty"`
	LibrarySkipped int `json:"library_skipped,omitempty"`
	// Partition-parallel batch negotiation observability: regions the
	// batch planner created, nets whose bounding boxes crossed a cut, and
	// the split of negotiation iterations between region-local loops and
	// the whole-device loop.
	PartitionRegions  int                   `json:"partition_regions"`
	PartitionCrossing int                   `json:"partition_crossing_nets"`
	RegionIterations  int                   `json:"region_iterations"`
	GlobalIterations  int                   `json:"global_iterations"`
	Connections       int                   `json:"connections"` // live connection records
	FramesShipped     int                   `json:"frames_shipped"`
	BytesShipped      int                   `json:"bytes_shipped"`
	QueueDepth        int                   `json:"queue_depth"`
	Ops               map[string]OpStatsMsg `json:"ops"`
}

// OpStatsMsg is one operation's count and latency distribution.
type OpStatsMsg struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	Meanus float64 `json:"mean_us"`
}

// FleetStatsMsg is the fleet section of statsz: coordinator counters plus
// one entry per board slot.
type FleetStatsMsg struct {
	Boards           int                      `json:"boards"`      // active board slots
	SparesLeft       int                      `json:"spares_left"` // unconsumed spare boards
	Sessions         int                      `json:"sessions"`    // admitted logical sessions
	Failovers        int                      `json:"failovers"`   // completed board swaps
	FailoverFails    int                      `json:"failover_fails"`
	HealthProbes     int                      `json:"health_probes"`
	ProbeFails       int                      `json:"probe_fails"`
	AdmissionRejects int                      `json:"admission_rejects"`
	RestoredConns    int                      `json:"restored_conns"`                // connections replayed onto spares
	ReplayedPaths    int                      `json:"replayed_paths"`                // restores served by cached-path replay
	RestoreUs        int64                    `json:"failover_restore_us,omitempty"` // cumulative restore-routing time (cores + adoption, excl. push/audit)
	DownSlots        int                      `json:"down_slots"`                    // dead slots with no spare left
	Slots            map[string]BoardStatsMsg `json:"slots,omitempty"`
}

// BoardStatsMsg is one board slot: the board currently serving it, its
// health, its worker-session counters, and the configuration traffic its
// hardware has seen over the XHWIF link.
type BoardStatsMsg struct {
	Board    string          `json:"board"` // name of the serving board
	Epoch    uint64          `json:"epoch"`
	Healthy  bool            `json:"healthy"`
	Sessions int             `json:"sessions"` // logical sessions placed here
	Worker   SessionStatsMsg `json:"worker"`
	HW       BoardHWMsg      `json:"hw"`
}

// BoardHWMsg is the configuration-port traffic a fleet board's hardware has
// accepted.
type BoardHWMsg struct {
	FullConfigs    int `json:"full_configs"`
	PartialConfigs int `json:"partial_configs"`
	FramesWritten  int `json:"frames_written"`
	BytesWritten   int `json:"bytes_written"`
}

// GatewayStatsMsg is the edge section of statsz: coordinator counters plus
// one entry per tenant and per backend fleet. It travels inside the same
// statsz payload on both framings (v3 carries statsz as a JSON blob, so no
// binary ABI change is needed).
type GatewayStatsMsg struct {
	Backends         int `json:"backends"`          // registered backend fleets
	HealthyBackends  int `json:"healthy_backends"`  // currently in rotation
	DrainingBackends int `json:"draining_backends"` // marked draining or drained
	Sessions         int `json:"sessions"`          // admitted logical sessions
	Probes           int `json:"probes"`            // hello+statsz health probes run
	ProbeFails       int `json:"probe_fails"`
	Ejections        int `json:"ejections"` // backends removed from rotation by probes
	Readmits         int `json:"readmits"`  // ejected backends that probed healthy again
	Drains           int `json:"drains"`    // completed backend drains
	Handoffs         int `json:"handoffs"`  // sessions moved by journal replay
	HandoffFails     int `json:"handoff_fails"`
	ReplayedOps      int `json:"replayed_ops"` // journaled ops re-executed on handoff targets
	ReplaySkips      int `json:"replay_skips"` // replayed unroutes whose net was already absent

	Tenants     map[string]GatewayTenantMsg  `json:"tenants,omitempty"`
	BackendsMap map[string]GatewayBackendMsg `json:"backends_detail,omitempty"`
}

// GatewayTenantMsg is one tenant's admission counters at the edge.
type GatewayTenantMsg struct {
	Sessions         int `json:"sessions"`          // live sessions admitted
	AdmittedOps      int `json:"admitted_ops"`      // ops that passed the token bucket
	RejectedOps      int `json:"rejected_ops"`      // ops refused with quota_exceeded
	RejectedSessions int `json:"rejected_sessions"` // connects refused at the session cap
}

// GatewayBackendMsg is one backend fleet as the gateway sees it.
type GatewayBackendMsg struct {
	Addr       string   `json:"addr"`
	Classes    []string `json:"classes"` // device-class aliases it serves
	Healthy    bool     `json:"healthy"`
	Draining   bool     `json:"draining"`
	Sessions   int      `json:"sessions"` // sessions currently pinned here
	Ops        int      `json:"ops"`      // requests forwarded
	Errors     int      `json:"errors"`   // forwarded requests that failed in transport
	ProbeFails int      `json:"probe_fails"`
}
