package v3

import (
	"bytes"
	"testing"

	"repro/internal/server/protocol"
)

// seedFrames builds a corpus of well-formed v3 frames (requests and
// responses across every record shape) so the fuzzer starts from valid
// encodings and mutates from there.
func seedFrames(t interface{ Fatal(...interface{}) }) [][]byte {
	key := uint64(7)
	reqs := []protocol.Request{
		{ID: 1, Op: "connect", Session: "s", TimeoutMillis: 250, Key: &key},
		{ID: 2, Op: "devices"},
		{ID: 3, Op: "statsz"},
		{ID: 4, Op: "readback", Session: "s"},
		{ID: 5, Op: "route", Session: "s",
			Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
			Sinks:  []protocol.EndPointMsg{pin(3, 4, 9), port("m0", "q", 1)}},
		{ID: 6, Op: "bus", Session: "s",
			Sources: []protocol.EndPointMsg{pin(0, 1, 2)},
			Sinks:   []protocol.EndPointMsg{pin(3, 4, 5)}},
		{ID: 7, Op: "batch", Session: "s",
			Nets: []protocol.NetMsg{{
				Source: pin(0, 1, 3),
				Sinks:  []protocol.EndPointMsg{pin(2, 2, 5)},
				Pips:   []protocol.PipMsg{{Row: 1, Col: 2, From: 3, To: 4}}}}},
		{ID: 8, Op: "unroute", Session: "s",
			Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 5, Col: 6, Wire: 7}}},
		{ID: 9, Op: "core_replace", Session: "s",
			Core: &protocol.CoreMsg{Name: "m", Kind: "constmul", Row: 1, Col: 2, K: &key, KBits: 8}},
	}
	var out [][]byte
	for i := range reqs {
		b, err := AppendRequest(nil, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}

	resps := []struct {
		op   byte
		resp protocol.Response
	}{
		{OpConnect, protocol.Response{ID: 1, Rows: 4, Cols: 4, Arch: "virtex", Config: []byte{1, 2, 3}}},
		{OpDevices, protocol.Response{ID: 2, Devices: []string{"a", "b"}}},
		{OpRoute, protocol.Response{ID: 5, Board: "b0", Epoch: 3, FrameN: 2, Frames: []byte{0xAA, 0xBB}}},
		{OpRoute, protocol.Response{ID: 5, Err: "nope", ErrorCode: protocol.CodeRoute}},
		{OpTrace, protocol.Response{ID: 6, Net: &protocol.NetMsg{
			Source: pin(1, 2, 3), Sinks: []protocol.EndPointMsg{pin(4, 5, 6)}}}},
	}
	for _, rc := range resps {
		head, raw, err := AppendResponse(nil, rc.op, &rc.resp)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append(append([]byte(nil), head...), raw...))
	}
	return out
}

// FuzzDecodeV3 throws arbitrary bytes at the full server-side ingest path:
// header filter, then request decode; and at the client-side response
// decode. The invariants under fuzz are (1) no panic, no unbounded
// allocation; (2) anything that decodes as a request re-encodes to a
// frame that decodes identically (no state smuggled past the codec).
func FuzzDecodeV3(f *testing.F) {
	for _, frame := range seedFrames(f) {
		f.Add(frame)
	}
	// A few deliberately hostile seeds: garbage magic, wrong version,
	// absurd length, truncated payload.
	f.Add([]byte("XXXXnot a frame at all"))
	bad := make([]byte, HeaderSize)
	PutHeader(bad, Header{Op: OpRoute, ID: 1, Len: 64})
	bad[4] = 9
	f.Add(bad)
	f.Add(append(hdr(OpBatch, 0, 2, 12), 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch [HeaderSize]byte
		h, err := ReadHeader(bytes.NewReader(data), &scratch)
		if err != nil {
			return // filtered before any allocation: the point of the filter
		}
		payload, err := ReadPayloadInto(bytes.NewReader(data[HeaderSize:]), h, nil)
		if err != nil {
			return
		}

		if h.Flags&FlagResp != 0 {
			var resp protocol.Response
			if err := DecodeResponse(h, payload, &resp); err != nil {
				return
			}
			head, raw, err := AppendResponse(nil, h.Op, &resp)
			if err != nil {
				t.Fatalf("decoded response does not re-encode: %v", err)
			}
			reFrame := append(append([]byte(nil), head...), raw...)
			h2, err := ParseHeader(reFrame)
			if err != nil {
				t.Fatalf("re-encoded response has bad header: %v", err)
			}
			var resp2 protocol.Response
			if err := DecodeResponse(h2, reFrame[HeaderSize:], &resp2); err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			return
		}

		in := NewInterner()
		var req protocol.Request
		if err := DecodeRequest(h, payload, &req, in); err != nil {
			return
		}
		re, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		h2, err := ParseHeader(re)
		if err != nil {
			t.Fatalf("re-encoded request has bad header: %v", err)
		}
		var req2 protocol.Request
		if err := DecodeRequest(h2, re[HeaderSize:], &req2, in); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		re2, err := AppendRequest(nil, &req2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("request encode not canonical after round trip (%v)", err)
		}
	})
}
