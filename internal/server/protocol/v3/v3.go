// Package v3 is the compact binary framing of the jrouted service
// protocol. It replaces the framed-JSON v2 encoding on connections that
// negotiate it (hello capability "binv3") with a fixed little-endian
// header plus varint-encoded op records, so the wire path moves
// configuration frames as raw bytes with no intermediate marshal.
//
// # Frame layout
//
// Every message is a fixed 20-byte header followed by Len payload bytes:
//
//	offset  size  field
//	0       4     magic "JRv3" (4A 52 76 33)
//	4       1     version (3)
//	5       1     op byte (Op* constants)
//	6       2     flags, little-endian (FlagResp on responses)
//	8       8     request id, little-endian
//	16      4     payload length, little-endian (<= MaxPayload)
//
// Integers inside payloads are unsigned varints (binary.Uvarint); signed
// fields use zigzag. Strings and blobs are a uvarint length followed by
// the bytes. Error codes travel as single bytes (Code* constants). Every
// op record pins its layout in the ABI golden tests — a byte shift there
// is a wire break and must bump the version.
//
// # Zero-copy convention
//
// Each response carries at most one large blob (config stream, dirty
// frames, statsz JSON) and the blob is always the final field. Encoders
// therefore return the blob separately from the encoded head so callers
// can hand both to the socket in one vectored write (WriteMsg) without
// copying the frame data; decoders return blobs aliasing the read buffer,
// which the caller owns and recycles.
package v3

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"

	"repro/internal/server/protocol"
)

// Frame constants.
const (
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 20
	// Magic opens every v3 frame.
	Magic = "JRv3"
	// Version is the wire version byte carried in every header.
	Version = 3
	// MaxPayload bounds a frame payload, matching the XHWIF frame limit.
	MaxPayload = 64 << 20
	// FlagResp marks a response frame.
	FlagResp uint16 = 1 << 0
)

// Op bytes. Values are pinned by the ABI tests; never renumber.
const (
	OpConnect        byte = 0x01
	OpDevices        byte = 0x02
	OpStatsz         byte = 0x03
	OpReadback       byte = 0x04
	OpRoute          byte = 0x10
	OpBus            byte = 0x11
	OpBusBatch       byte = 0x12
	OpBatch          byte = 0x13
	OpUnroute        byte = 0x14
	OpReverseUnroute byte = 0x15
	OpTrace          byte = 0x16
	OpReverseTrace   byte = 0x17
	OpCoreNew        byte = 0x20
	OpCoreReplace    byte = 0x21
)

// Error-code bytes. Values are pinned by the ABI tests; never renumber.
// CodeOK (0) means success.
const (
	CodeOK         byte = 0x00
	CodeBadRequest byte = 0x01
	CodeUnknownOp  byte = 0x02
	CodeVersion    byte = 0x03
	CodeNoDevice   byte = 0x04
	CodeBusy       byte = 0x05
	CodeCanceled   byte = 0x06
	CodeDeadline   byte = 0x07
	CodeAdmission  byte = 0x08
	CodeBoardDown  byte = 0x09
	CodeFailover   byte = 0x0A
	CodeRoute      byte = 0x0B
	CodeInternal   byte = 0x0C
	CodeMalformed  byte = 0x0D
	// Gateway-tier codes (PR 7). Daemons without an authenticator never
	// emit them, but the bytes are part of the ABI like every other code.
	CodeUnauthorized byte = 0x0E
	CodeQuota        byte = 0x0F
	CodeUnknownAlias byte = 0x10
)

// Endpoint tags.
const (
	epPin  byte = 0x01
	epPort byte = 0x02
)

// opBytes maps protocol op names to their wire bytes; opNames is the
// reverse (array-indexed so the hot decode path does no map lookup).
var opBytes = map[string]byte{
	"connect":         OpConnect,
	"devices":         OpDevices,
	"statsz":          OpStatsz,
	"readback":        OpReadback,
	"route":           OpRoute,
	"bus":             OpBus,
	"bus_batch":       OpBusBatch,
	"batch":           OpBatch,
	"unroute":         OpUnroute,
	"reverse_unroute": OpReverseUnroute,
	"trace":           OpTrace,
	"reverse_trace":   OpReverseTrace,
	"core_new":        OpCoreNew,
	"core_replace":    OpCoreReplace,
}

var opNames [256]string

// codeBytes maps protocol error-code strings to wire bytes; codeNames is
// the reverse.
var codeBytes = map[string]byte{
	protocol.CodeBadRequest: CodeBadRequest,
	protocol.CodeUnknownOp:  CodeUnknownOp,
	protocol.CodeVersion:    CodeVersion,
	protocol.CodeNoDevice:   CodeNoDevice,
	protocol.CodeBusy:       CodeBusy,
	protocol.CodeCanceled:   CodeCanceled,
	protocol.CodeDeadline:   CodeDeadline,
	protocol.CodeAdmission:  CodeAdmission,
	protocol.CodeBoardDown:  CodeBoardDown,
	protocol.CodeFailover:   CodeFailover,
	protocol.CodeRoute:      CodeRoute,
	protocol.CodeInternal:   CodeInternal,
	protocol.CodeMalformed:  CodeMalformed,

	protocol.CodeUnauthorized: CodeUnauthorized,
	protocol.CodeQuota:        CodeQuota,
	protocol.CodeUnknownAlias: CodeUnknownAlias,
}

var codeNames [256]string

func init() {
	for name, b := range opBytes {
		opNames[b] = name
	}
	for name, b := range codeBytes {
		codeNames[b] = name
	}
}

// OpByte returns the wire byte for a protocol op name.
func OpByte(op string) (byte, bool) {
	b, ok := opBytes[op]
	return b, ok
}

// OpName returns the protocol op name for a wire byte ("" if unknown).
func OpName(b byte) string { return opNames[b] }

// CodeByte returns the wire byte for a protocol error-code string.
// Unknown codes collapse to CodeInternal so the error text still travels.
func CodeByte(code string) byte {
	if code == "" {
		return CodeOK
	}
	if b, ok := codeBytes[code]; ok {
		return b
	}
	return CodeInternal
}

// CodeName returns the protocol error-code string for a wire byte.
func CodeName(b byte) string { return codeNames[b] }

// Header is a parsed frame header.
type Header struct {
	Op    byte
	Flags uint16
	ID    uint64
	Len   uint32
}

// FilterError is the pre-parse rejection: the fixed header failed the
// magic/version/length checks, so the frame was refused before any payload
// allocation or dispatch. It maps to protocol.CodeMalformed on the wire.
type FilterError struct {
	Reason string
}

func (e *FilterError) Error() string { return "v3: malformed frame: " + e.Reason }

// PutHeader encodes h into dst, which must hold HeaderSize bytes.
func PutHeader(dst []byte, h Header) {
	_ = dst[HeaderSize-1]
	copy(dst, Magic)
	dst[4] = Version
	dst[5] = h.Op
	binary.LittleEndian.PutUint16(dst[6:], h.Flags)
	binary.LittleEndian.PutUint64(dst[8:], h.ID)
	binary.LittleEndian.PutUint32(dst[16:], h.Len)
}

// ParseHeader is the pre-parse garbage filter: it validates magic, version
// and length bounds on the fixed header before the caller allocates a
// payload buffer or dispatches anything. b must hold HeaderSize bytes.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, &FilterError{Reason: fmt.Sprintf("header is %d bytes, need %d", len(b), HeaderSize)}
	}
	if string(b[:4]) != Magic {
		return Header{}, &FilterError{Reason: fmt.Sprintf("bad magic %x", b[:4])}
	}
	if b[4] != Version {
		return Header{}, &FilterError{Reason: fmt.Sprintf("version %d, want %d", b[4], Version)}
	}
	h := Header{
		Op:    b[5],
		Flags: binary.LittleEndian.Uint16(b[6:]),
		ID:    binary.LittleEndian.Uint64(b[8:]),
		Len:   binary.LittleEndian.Uint32(b[16:]),
	}
	if h.Len > MaxPayload {
		return Header{}, &FilterError{Reason: fmt.Sprintf("payload of %d bytes exceeds %d limit", h.Len, MaxPayload)}
	}
	return h, nil
}

// ReadHeader reads and filters one fixed header. A clean close between
// frames (zero bytes read) returns plain io.EOF; a partial header is
// io.ErrUnexpectedEOF. scratch is the caller's reusable header buffer.
func ReadHeader(r io.Reader, scratch *[HeaderSize]byte) (Header, error) {
	if n, err := io.ReadFull(r, scratch[:]); err != nil {
		if n == 0 && err == io.EOF {
			return Header{}, io.EOF
		}
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, fmt.Errorf("v3: short header (%d of %d bytes): %w", n, HeaderSize, err)
	}
	return ParseHeader(scratch[:])
}

// ReadPayloadInto reads h.Len payload bytes, reusing buf when its capacity
// suffices. A truncated payload is a hard protocol error
// (io.ErrUnexpectedEOF), never a clean close.
func ReadPayloadInto(r io.Reader, h Header, buf []byte) ([]byte, error) {
	n := int(h.Len)
	if n == 0 {
		return buf[:0], nil
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if got, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("v3: short payload (%d of %d bytes): %w", got, n, err)
	}
	return buf, nil
}

// WriteMsg writes head (a complete header+meta encoding) and the optional
// raw blob tail as one message, using a vectored write (writev on TCP) so
// the blob is never copied into the head buffer. bufs is the caller's
// reusable scratch; it is consumed and reset on every call.
func WriteMsg(w io.Writer, bufs *net.Buffers, head, raw []byte) error {
	if len(raw) == 0 {
		_, err := w.Write(head)
		return err
	}
	*bufs = append((*bufs)[:0], head, raw)
	_, err := bufs.WriteTo(w)
	return err
}

// appendUvarint / appendSvarint are the varint primitives. Signed values
// use zigzag so small negatives stay small.
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendSvarint(dst []byte, v int) []byte {
	return binary.AppendUvarint(dst, uint64((int64(v)<<1)^(int64(v)>>63)))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendEndpoint(dst []byte, ep *protocol.EndPointMsg) ([]byte, error) {
	switch {
	case ep == nil:
		return dst, fmt.Errorf("v3: missing endpoint")
	case ep.Pin != nil:
		dst = append(dst, epPin)
		dst = appendSvarint(dst, ep.Pin.Row)
		dst = appendSvarint(dst, ep.Pin.Col)
		return appendUvarint(dst, uint64(ep.Pin.Wire)), nil
	case ep.Port != nil:
		dst = append(dst, epPort)
		dst = appendString(dst, ep.Port.Core)
		dst = appendString(dst, ep.Port.Group)
		return appendSvarint(dst, ep.Port.Index), nil
	default:
		return dst, fmt.Errorf("v3: endpoint is neither pin nor port")
	}
}

func appendEndpoints(dst []byte, eps []protocol.EndPointMsg) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(eps)))
	for i := range eps {
		var err error
		if dst, err = appendEndpoint(dst, &eps[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendNet(dst []byte, n *protocol.NetMsg) ([]byte, error) {
	dst, err := appendEndpoint(dst, &n.Source)
	if err != nil {
		return dst, err
	}
	if dst, err = appendEndpoints(dst, n.Sinks); err != nil {
		return dst, err
	}
	dst = appendUvarint(dst, uint64(len(n.Pips)))
	for i := range n.Pips {
		p := &n.Pips[i]
		dst = appendSvarint(dst, p.Row)
		dst = appendSvarint(dst, p.Col)
		dst = appendUvarint(dst, uint64(p.From))
		dst = appendUvarint(dst, uint64(p.To))
	}
	return dst, nil
}

func appendCore(dst []byte, c *protocol.CoreMsg) ([]byte, error) {
	if c == nil {
		return dst, fmt.Errorf("v3: missing core description")
	}
	dst = appendString(dst, c.Name)
	dst = appendString(dst, c.Kind)
	dst = appendSvarint(dst, c.Row)
	dst = appendSvarint(dst, c.Col)
	if c.K != nil {
		dst = append(dst, 1)
		dst = appendUvarint(dst, *c.K)
	} else {
		dst = append(dst, 0)
	}
	dst = appendSvarint(dst, c.KBits)
	return appendSvarint(dst, c.Bits), nil
}

// AppendRequest encodes one request frame (header + payload) onto dst and
// returns the extended slice. The hello handshake has no binary form — it
// always travels as framed JSON v2 before the switch.
func AppendRequest(dst []byte, req *protocol.Request) ([]byte, error) {
	op, ok := opBytes[req.Op]
	if !ok {
		return dst, fmt.Errorf("v3: op %q has no binary encoding", req.Op)
	}
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = appendString(dst, req.Session)
	dst = appendUvarint(dst, uint64(req.TimeoutMillis))
	var err error
	switch op {
	case OpConnect:
		if req.Key != nil {
			dst = append(dst, 1)
			dst = appendUvarint(dst, *req.Key)
		} else {
			dst = append(dst, 0)
		}
	case OpDevices, OpStatsz, OpReadback:
	case OpRoute:
		if dst, err = appendEndpoint(dst, req.Source); err != nil {
			return dst, err
		}
		if dst, err = appendEndpoints(dst, req.Sinks); err != nil {
			return dst, err
		}
	case OpBus, OpBusBatch:
		if dst, err = appendEndpoints(dst, req.Sources); err != nil {
			return dst, err
		}
		if dst, err = appendEndpoints(dst, req.Sinks); err != nil {
			return dst, err
		}
	case OpBatch:
		dst = appendUvarint(dst, uint64(len(req.Nets)))
		for i := range req.Nets {
			if dst, err = appendNet(dst, &req.Nets[i]); err != nil {
				return dst, err
			}
		}
	case OpUnroute, OpReverseUnroute, OpTrace, OpReverseTrace:
		if dst, err = appendEndpoint(dst, req.Source); err != nil {
			return dst, err
		}
	case OpCoreNew, OpCoreReplace:
		if dst, err = appendCore(dst, req.Core); err != nil {
			return dst, err
		}
	}
	n := len(dst) - start - HeaderSize
	if n > MaxPayload {
		return dst, fmt.Errorf("v3: request payload of %d bytes exceeds limit", n)
	}
	PutHeader(dst[start:], Header{Op: op, ID: req.ID, Len: uint32(n)})
	return dst, nil
}

// AppendResponse encodes one response onto dst. It returns the extended
// head (header + meta fields, including the blob length prefix) and the
// raw blob tail separately: the configuration stream, dirty frames or
// statsz JSON are NOT copied into head — write both with WriteMsg for the
// zero-copy path. raw aliases resp's buffers and must be written before
// they are recycled.
func AppendResponse(dst []byte, op byte, resp *protocol.Response) (head, raw []byte, err error) {
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	code := CodeByte(resp.ErrorCode)
	if code == CodeOK && (resp.Err != "" || resp.Busy) {
		code = CodeInternal
		if resp.Busy {
			code = CodeBusy
		}
	}
	dst = append(dst, code)
	if code != CodeOK {
		dst = appendString(dst, resp.Err)
	} else {
		dst = appendString(dst, resp.Board)
		dst = appendUvarint(dst, resp.Epoch)
		switch op {
		case OpConnect:
			dst = appendSvarint(dst, resp.Rows)
			dst = appendSvarint(dst, resp.Cols)
			dst = appendString(dst, resp.Arch)
			dst = appendUvarint(dst, uint64(len(resp.Config)))
			raw = resp.Config
		case OpReadback:
			dst = appendUvarint(dst, uint64(len(resp.Config)))
			raw = resp.Config
		case OpDevices:
			dst = appendUvarint(dst, uint64(len(resp.Devices)))
			for _, d := range resp.Devices {
				dst = appendString(dst, d)
			}
		case OpStatsz:
			blob, merr := json.Marshal(resp.Stats)
			if merr != nil {
				return dst, nil, fmt.Errorf("v3: encoding statsz: %w", merr)
			}
			dst = appendUvarint(dst, uint64(len(blob)))
			raw = blob
		case OpTrace, OpReverseTrace:
			if resp.Net != nil {
				dst = append(dst, 1)
				if dst, err = appendNet(dst, resp.Net); err != nil {
					return dst, nil, err
				}
			} else {
				dst = append(dst, 0)
			}
		default: // mutating ops: dirty-frame push
			dst = appendUvarint(dst, uint64(resp.FrameN))
			dst = appendUvarint(dst, uint64(len(resp.Frames)))
			raw = resp.Frames
		}
	}
	n := len(dst) - start - HeaderSize + len(raw)
	if n > MaxPayload {
		return dst, nil, fmt.Errorf("v3: response payload of %d bytes exceeds limit", n)
	}
	PutHeader(dst[start:], Header{Op: op, Flags: FlagResp, ID: resp.ID, Len: uint32(n)})
	return dst, raw, nil
}

// Interner deduplicates the small recurring strings of the hot decode path
// (session, core and group names) so a steady-state connection stops
// allocating for them. Lookup of a []byte key against the map does not
// allocate; only the first sighting of a name copies it.
type Interner struct {
	m map[string]string
}

// NewInterner creates an empty intern table.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

func (in *Interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}

// dec is a cursor over one payload; the first failure sticks.
type dec struct {
	b   []byte
	off int
	err error
	in  *Interner
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("v3: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint() int {
	u := d.uvarint()
	return int(int64(u>>1) ^ -int64(u&1))
}

// count reads a collection length and bounds it by the bytes remaining
// (each element costs at least one byte), so corrupt counts cannot force
// huge allocations.
func (d *dec) count(what string) int {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)-d.off) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

func (d *dec) bytes(what string) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

func (d *dec) str(what string) string {
	b := d.bytes(what)
	if d.err != nil {
		return ""
	}
	if d.in != nil {
		return d.in.intern(b)
	}
	return string(b)
}

func (d *dec) endpoint(ep *protocol.EndPointMsg) {
	switch tag := d.u8(); tag {
	case epPin:
		p := &protocol.PinMsg{Row: d.svarint(), Col: d.svarint(), Wire: int(d.uvarint())}
		ep.Pin, ep.Port = p, nil
	case epPort:
		p := &protocol.PortRefMsg{Core: d.str("core name"), Group: d.str("group name"), Index: d.svarint()}
		ep.Port, ep.Pin = p, nil
	default:
		if d.err == nil {
			d.err = fmt.Errorf("v3: unknown endpoint tag %#x at offset %d", tag, d.off-1)
		}
	}
}

func (d *dec) endpoints(what string) []protocol.EndPointMsg {
	n := d.count(what)
	if d.err != nil || n == 0 {
		return nil
	}
	eps := make([]protocol.EndPointMsg, n)
	for i := range eps {
		d.endpoint(&eps[i])
	}
	return eps
}

func (d *dec) net(n *protocol.NetMsg) {
	d.endpoint(&n.Source)
	n.Sinks = d.endpoints("sinks")
	np := d.count("pips")
	if d.err != nil || np == 0 {
		return
	}
	n.Pips = make([]protocol.PipMsg, np)
	for i := range n.Pips {
		p := &n.Pips[i]
		p.Row, p.Col = d.svarint(), d.svarint()
		p.From, p.To = int(d.uvarint()), int(d.uvarint())
	}
}

// DecodeRequest decodes a request payload into req. An optional Interner
// deduplicates the recurring name strings. Slices and strings in req may
// alias payload only for blob fields (requests carry none), so req
// outlives the read buffer safely.
func DecodeRequest(h Header, payload []byte, req *protocol.Request, in *Interner) error {
	op := opNames[h.Op]
	if op == "" {
		return fmt.Errorf("v3: unknown op byte %#x", h.Op)
	}
	req.ID = h.ID
	req.Op = op
	d := &dec{b: payload, in: in}
	req.Session = d.str("session")
	req.TimeoutMillis = int64(d.uvarint())
	switch h.Op {
	case OpConnect:
		if d.u8() != 0 {
			k := d.uvarint()
			req.Key = &k
		}
	case OpDevices, OpStatsz, OpReadback:
	case OpRoute:
		req.Source = &protocol.EndPointMsg{}
		d.endpoint(req.Source)
		req.Sinks = d.endpoints("sinks")
	case OpBus, OpBusBatch:
		req.Sources = d.endpoints("sources")
		req.Sinks = d.endpoints("sinks")
	case OpBatch:
		n := d.count("nets")
		if n > 0 {
			req.Nets = make([]protocol.NetMsg, n)
			for i := range req.Nets {
				d.net(&req.Nets[i])
			}
		}
	case OpUnroute, OpReverseUnroute, OpTrace, OpReverseTrace:
		req.Source = &protocol.EndPointMsg{}
		d.endpoint(req.Source)
	case OpCoreNew, OpCoreReplace:
		c := &protocol.CoreMsg{}
		c.Name = d.str("core name")
		c.Kind = d.str("core kind")
		c.Row, c.Col = d.svarint(), d.svarint()
		if d.u8() != 0 {
			k := d.uvarint()
			c.K = &k
		}
		c.KBits = d.svarint()
		c.Bits = d.svarint()
		req.Core = c
	}
	if d.err == nil && d.off != len(payload) {
		d.err = fmt.Errorf("v3: %d trailing bytes after %s request", len(payload)-d.off, op)
	}
	return d.err
}

// DecodeResponse decodes a response payload into resp. Blob fields
// (Config, Frames) alias payload — the caller must consume them before
// recycling the read buffer.
func DecodeResponse(h Header, payload []byte, resp *protocol.Response) error {
	if opNames[h.Op] == "" {
		return fmt.Errorf("v3: unknown op byte %#x", h.Op)
	}
	resp.ID = h.ID
	d := &dec{b: payload}
	code := d.u8()
	if code != CodeOK {
		resp.Err = d.str("error text")
		resp.ErrorCode = codeNames[code]
		if resp.ErrorCode == "" {
			resp.ErrorCode = protocol.CodeInternal
		}
		resp.Busy = code == CodeBusy
		return d.err
	}
	resp.Board = d.str("board name")
	resp.Epoch = d.uvarint()
	switch h.Op {
	case OpConnect:
		resp.Rows, resp.Cols = d.svarint(), d.svarint()
		resp.Arch = d.str("arch name")
		resp.Config = d.bytes("config stream")
	case OpReadback:
		resp.Config = d.bytes("config stream")
	case OpDevices:
		n := d.count("devices")
		for i := 0; i < n && d.err == nil; i++ {
			resp.Devices = append(resp.Devices, d.str("device name"))
		}
	case OpStatsz:
		blob := d.bytes("statsz blob")
		if d.err == nil {
			resp.Stats = &protocol.StatsMsg{}
			if err := json.Unmarshal(blob, resp.Stats); err != nil {
				return fmt.Errorf("v3: decoding statsz: %w", err)
			}
		}
	case OpTrace, OpReverseTrace:
		if d.u8() != 0 {
			resp.Net = &protocol.NetMsg{}
			d.net(resp.Net)
		}
	default:
		resp.FrameN = int(d.uvarint())
		resp.Frames = d.bytes("frame stream")
	}
	if d.err == nil && d.off != len(payload) {
		d.err = fmt.Errorf("v3: %d trailing bytes after response", len(payload)-d.off)
	}
	return d.err
}
