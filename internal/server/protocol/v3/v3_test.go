package v3

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/server/protocol"
)

// pin / port build endpoint messages for the golden fixtures.
func pin(row, col, wire int) protocol.EndPointMsg {
	return protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: row, Col: col, Wire: wire}}
}

func port(core, group string, index int) protocol.EndPointMsg {
	return protocol.EndPointMsg{Port: &protocol.PortRefMsg{Core: core, Group: group, Index: index}}
}

func u64p(v uint64) *uint64 { return &v }

// TestABIHeader pins the exact header layout byte by byte (udpx-style):
// any codec change that shifts a byte here is a wire break.
func TestABIHeader(t *testing.T) {
	var buf [HeaderSize]byte
	PutHeader(buf[:], Header{Op: OpRoute, Flags: FlagResp, ID: 0x0102030405060708, Len: 0x01223344})
	want := []byte{
		0x4A, 0x52, 0x76, 0x33, // magic "JRv3"
		0x03,       // version
		0x10,       // op: route
		0x01, 0x00, // flags: FlagResp, little-endian
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // id, little-endian
		0x44, 0x33, 0x22, 0x01, // length, little-endian
	}
	if !bytes.Equal(buf[:], want) {
		t.Fatalf("header ABI changed:\n got %x\nwant %x", buf[:], want)
	}
	h, err := ParseHeader(buf[:])
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if h.Op != OpRoute || h.Flags != FlagResp || h.ID != 0x0102030405060708 || h.Len != 0x01223344 {
		t.Fatalf("ParseHeader round trip: %+v", h)
	}
}

// TestABIOpBytes pins every op byte assignment.
func TestABIOpBytes(t *testing.T) {
	want := map[string]byte{
		"connect": 0x01, "devices": 0x02, "statsz": 0x03, "readback": 0x04,
		"route": 0x10, "bus": 0x11, "bus_batch": 0x12, "batch": 0x13,
		"unroute": 0x14, "reverse_unroute": 0x15, "trace": 0x16, "reverse_trace": 0x17,
		"core_new": 0x20, "core_replace": 0x21,
	}
	if len(want) != len(opBytes) {
		t.Fatalf("op table has %d entries, ABI pins %d", len(opBytes), len(want))
	}
	for name, b := range want {
		if got, ok := OpByte(name); !ok || got != b {
			t.Errorf("op %q = %#x, ABI pins %#x", name, got, b)
		}
		if OpName(b) != name {
			t.Errorf("op byte %#x = %q, ABI pins %q", b, OpName(b), name)
		}
	}
}

// TestABICodeBytes pins every error-code byte assignment.
func TestABICodeBytes(t *testing.T) {
	want := map[string]byte{
		protocol.CodeBadRequest: 0x01, protocol.CodeUnknownOp: 0x02,
		protocol.CodeVersion: 0x03, protocol.CodeNoDevice: 0x04,
		protocol.CodeBusy: 0x05, protocol.CodeCanceled: 0x06,
		protocol.CodeDeadline: 0x07, protocol.CodeAdmission: 0x08,
		protocol.CodeBoardDown: 0x09, protocol.CodeFailover: 0x0A,
		protocol.CodeRoute: 0x0B, protocol.CodeInternal: 0x0C,
		protocol.CodeMalformed: 0x0D, protocol.CodeUnauthorized: 0x0E,
		protocol.CodeQuota: 0x0F, protocol.CodeUnknownAlias: 0x10,
	}
	if len(want) != len(codeBytes) {
		t.Fatalf("code table has %d entries, ABI pins %d", len(codeBytes), len(want))
	}
	for name, b := range want {
		if CodeByte(name) != b {
			t.Errorf("code %q = %#x, ABI pins %#x", name, CodeByte(name), b)
		}
		if CodeName(b) != name {
			t.Errorf("code byte %#x = %q, ABI pins %q", b, CodeName(b), name)
		}
	}
}

// hdr builds an expected header prefix for the golden frames.
func hdr(op byte, flags uint16, id uint64, length int) []byte {
	var b [HeaderSize]byte
	PutHeader(b[:], Header{Op: op, Flags: flags, ID: id, Len: uint32(length)})
	return b[:]
}

func frame(op byte, flags uint16, id uint64, payload ...byte) []byte {
	return append(hdr(op, flags, id, len(payload)), payload...)
}

// TestABIRequests pins a byte-exact golden encoding for every request op
// record.
func TestABIRequests(t *testing.T) {
	cases := []struct {
		name string
		req  protocol.Request
		want []byte
	}{
		{"route",
			protocol.Request{ID: 1, Op: "route", Session: "dev0",
				Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
				Sinks:  []protocol.EndPointMsg{pin(3, 4, 9)}},
			frame(0x10, 0, 1,
				0x04, 'd', 'e', 'v', '0', // session "dev0"
				0x00,                   // timeout 0
				0x01, 0x02, 0x04, 0x07, // source: pin, zigzag(1), zigzag(2), wire 7
				0x01,                   // 1 sink
				0x01, 0x06, 0x08, 0x09, // sink: pin, zigzag(3), zigzag(4), wire 9
			)},
		{"connect+key",
			protocol.Request{ID: 2, Op: "connect", Session: "a", TimeoutMillis: 250, Key: u64p(5)},
			frame(0x01, 0, 2,
				0x01, 'a',
				0xFA, 0x01, // timeout 250 as uvarint
				0x01, 0x05, // key present, key 5
			)},
		{"devices",
			protocol.Request{ID: 10, Op: "devices"},
			frame(0x02, 0, 10, 0x00, 0x00)},
		{"statsz",
			protocol.Request{ID: 8, Op: "statsz"},
			frame(0x03, 0, 8, 0x00, 0x00)},
		{"readback",
			protocol.Request{ID: 11, Op: "readback", Session: "d"},
			frame(0x04, 0, 11, 0x01, 'd', 0x00)},
		{"bus",
			protocol.Request{ID: 12, Op: "bus", Session: "d",
				Sources: []protocol.EndPointMsg{pin(1, 1, 2)},
				Sinks:   []protocol.EndPointMsg{pin(2, 3, 4)}},
			frame(0x11, 0, 12,
				0x01, 'd', 0x00,
				0x01, 0x01, 0x02, 0x02, 0x02,
				0x01, 0x01, 0x04, 0x06, 0x04,
			)},
		{"bus_batch+port",
			protocol.Request{ID: 3, Op: "bus_batch", Session: "d",
				Sources: []protocol.EndPointMsg{port("m0", "q", 1)},
				Sinks:   []protocol.EndPointMsg{pin(2, 3, 4)}},
			frame(0x12, 0, 3,
				0x01, 'd', 0x00,
				0x01,                                  // 1 source
				0x02, 0x02, 'm', '0', 0x01, 'q', 0x02, // port "m0"."q"[1]
				0x01,                   // 1 sink
				0x01, 0x04, 0x06, 0x04, // pin(2,3,4)
			)},
		{"batch",
			protocol.Request{ID: 4, Op: "batch", Session: "d",
				Nets: []protocol.NetMsg{{Source: pin(0, 1, 3), Sinks: []protocol.EndPointMsg{pin(2, 2, 5)}}}},
			frame(0x13, 0, 4,
				0x01, 'd', 0x00,
				0x01,                   // 1 net
				0x01, 0x00, 0x02, 0x03, // source pin(0,1,3)
				0x01, 0x01, 0x04, 0x04, 0x05, // 1 sink: pin(2,2,5)
				0x00, // no pips
			)},
		{"unroute",
			protocol.Request{ID: 5, Op: "unroute", Session: "d",
				Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 5, Col: 6, Wire: 7}}},
			frame(0x14, 0, 5, 0x01, 'd', 0x00, 0x01, 0x0A, 0x0C, 0x07)},
		{"reverse_unroute",
			protocol.Request{ID: 13, Op: "reverse_unroute", Session: "d",
				Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 0, Col: 0, Wire: 1}}},
			frame(0x15, 0, 13, 0x01, 'd', 0x00, 0x01, 0x00, 0x00, 0x01)},
		{"trace",
			protocol.Request{ID: 9, Op: "trace", Session: "d",
				Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 1, Wire: 1}}},
			frame(0x16, 0, 9, 0x01, 'd', 0x00, 0x01, 0x02, 0x02, 0x01)},
		{"reverse_trace",
			protocol.Request{ID: 14, Op: "reverse_trace", Session: "d",
				Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 0, Col: 0, Wire: 2}}},
			frame(0x17, 0, 14, 0x01, 'd', 0x00, 0x01, 0x00, 0x00, 0x02)},
		{"core_new",
			protocol.Request{ID: 6, Op: "core_new", Session: "d",
				Core: &protocol.CoreMsg{Name: "r0", Kind: "register", Row: 34, Col: 2, Bits: 4}},
			frame(0x20, 0, 6,
				0x01, 'd', 0x00,
				0x02, 'r', '0',
				0x08, 'r', 'e', 'g', 'i', 's', 't', 'e', 'r',
				0x44, 0x04, // zigzag(34), zigzag(2)
				0x00,       // no K
				0x00, 0x08, // kbits 0, zigzag(4)
			)},
		{"core_replace",
			protocol.Request{ID: 7, Op: "core_replace", Session: "d",
				Core: &protocol.CoreMsg{Name: "m", Kind: "constmul", Row: 1, Col: 2, K: u64p(11), KBits: 8}},
			frame(0x21, 0, 7,
				0x01, 'd', 0x00,
				0x01, 'm',
				0x08, 'c', 'o', 'n', 's', 't', 'm', 'u', 'l',
				0x02, 0x04, // zigzag(1), zigzag(2)
				0x01, 0x0B, // K present, K=11
				0x10, 0x00, // zigzag(8), bits 0
			)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := AppendRequest(nil, &tc.req)
			if err != nil {
				t.Fatalf("AppendRequest: %v", err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("request ABI changed:\n got %x\nwant %x", got, tc.want)
			}
			// Decode must reproduce the request, proven by re-encoding to
			// the identical bytes (the canonical-form round trip).
			h, err := ParseHeader(got)
			if err != nil {
				t.Fatalf("ParseHeader: %v", err)
			}
			var back protocol.Request
			if err := DecodeRequest(h, got[HeaderSize:], &back, nil); err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			again, err := AppendRequest(nil, &back)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(again, tc.want) {
				t.Fatalf("decode/re-encode not canonical:\n got %x\nwant %x", again, tc.want)
			}
		})
	}
}

// TestABIResponses pins a byte-exact golden encoding for every response
// record shape, including the zero-copy head/raw split.
func TestABIResponses(t *testing.T) {
	cases := []struct {
		name     string
		op       byte
		resp     protocol.Response
		wantHead []byte
		wantRaw  []byte
	}{
		{"mutating", OpRoute,
			protocol.Response{ID: 2, Board: "b0", Epoch: 3, FrameN: 2, Frames: []byte{0xAA, 0xBB, 0xCC}},
			append(hdr(0x10, FlagResp, 2, 10),
				0x00,           // code OK
				0x02, 'b', '0', // board
				0x03, // epoch
				0x02, // frame count
				0x03, // frame-stream length
			),
			[]byte{0xAA, 0xBB, 0xCC}},
		{"connect", OpConnect,
			protocol.Response{ID: 1, Rows: 4, Cols: 4, Arch: "virtex", Config: []byte{0x01, 0x02}},
			append(hdr(0x01, FlagResp, 1, 15),
				0x00,       // code OK
				0x00,       // board ""
				0x00,       // epoch 0
				0x08, 0x08, // zigzag(4), zigzag(4)
				0x06, 'v', 'i', 'r', 't', 'e', 'x',
				0x02, // config length
			),
			[]byte{0x01, 0x02}},
		{"readback", OpReadback,
			protocol.Response{ID: 5, Config: []byte{0xDE, 0xAD}},
			append(hdr(0x04, FlagResp, 5, 6), 0x00, 0x00, 0x00, 0x02),
			[]byte{0xDE, 0xAD}},
		{"devices", OpDevices,
			protocol.Response{ID: 3, Devices: []string{"a", "b"}},
			append(hdr(0x02, FlagResp, 3, 8),
				0x00, 0x00, 0x00, 0x02, 0x01, 'a', 0x01, 'b'),
			nil},
		{"trace", OpTrace,
			protocol.Response{ID: 4, Net: &protocol.NetMsg{
				Source: pin(1, 2, 3),
				Sinks:  []protocol.EndPointMsg{pin(4, 5, 6)},
				Pips:   []protocol.PipMsg{{Row: 1, Col: 2, From: 3, To: 4}}}},
			append(hdr(0x16, FlagResp, 4, 18),
				0x00, 0x00, 0x00,
				0x01,                   // net present
				0x01, 0x02, 0x04, 0x03, // source pin(1,2,3)
				0x01, 0x01, 0x08, 0x0A, 0x06, // 1 sink: pin(4,5,6)
				0x01, 0x02, 0x04, 0x03, 0x04, // 1 pip: (1,2) 3->4
			),
			nil},
		{"error", OpRoute,
			protocol.Response{ID: 7, Err: "nope", ErrorCode: protocol.CodeRoute},
			append(hdr(0x10, FlagResp, 7, 6), 0x0B, 0x04, 'n', 'o', 'p', 'e'),
			nil},
		{"busy", OpRoute,
			protocol.Response{ID: 8, Busy: true, Err: "q full", ErrorCode: protocol.CodeBusy},
			append(hdr(0x10, FlagResp, 8, 8), 0x05, 0x06, 'q', ' ', 'f', 'u', 'l', 'l'),
			nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			head, raw, err := AppendResponse(nil, tc.op, &tc.resp)
			if err != nil {
				t.Fatalf("AppendResponse: %v", err)
			}
			if !bytes.Equal(head, tc.wantHead) {
				t.Fatalf("response head ABI changed:\n got %x\nwant %x", head, tc.wantHead)
			}
			if !bytes.Equal(raw, tc.wantRaw) {
				t.Fatalf("response raw tail changed:\n got %x\nwant %x", raw, tc.wantRaw)
			}
			// Decode the assembled frame and re-encode: canonical round trip.
			full := append(append([]byte(nil), head...), raw...)
			h, err := ParseHeader(full)
			if err != nil {
				t.Fatalf("ParseHeader: %v", err)
			}
			var back protocol.Response
			if err := DecodeResponse(h, full[HeaderSize:], &back); err != nil {
				t.Fatalf("DecodeResponse: %v", err)
			}
			head2, raw2, err := AppendResponse(nil, tc.op, &back)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(head2, tc.wantHead) || !bytes.Equal(raw2, tc.wantRaw) {
				t.Fatalf("decode/re-encode not canonical:\n got %x + %x\nwant %x + %x",
					head2, raw2, tc.wantHead, tc.wantRaw)
			}
		})
	}
}

// TestStatszRoundTrip covers the statsz record (JSON blob tail).
func TestStatszRoundTrip(t *testing.T) {
	resp := protocol.Response{ID: 9, Stats: &protocol.StatsMsg{
		Sessions: map[string]protocol.SessionStatsMsg{"d": {Routes: 3}},
		Wire:     &protocol.WireStatsMsg{ConnsV3: 1, Malformed: 2},
	}}
	head, raw, err := AppendResponse(nil, OpStatsz, &resp)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	full := append(append([]byte(nil), head...), raw...)
	h, err := ParseHeader(full)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	var back protocol.Response
	if err := DecodeResponse(h, full[HeaderSize:], &back); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if back.Stats == nil || back.Stats.Sessions["d"].Routes != 3 ||
		back.Stats.Wire == nil || back.Stats.Wire.ConnsV3 != 1 || back.Stats.Wire.Malformed != 2 {
		t.Fatalf("statsz round trip lost data: %+v", back.Stats)
	}
}

// TestFilterGarbage feeds the pre-parse filter truncated, oversized and
// garbage frames; each must be rejected as a typed FilterError (or a short
// read) before any payload handling.
func TestFilterGarbage(t *testing.T) {
	valid := hdr(OpRoute, 0, 1, 4)
	garbageMagic := append([]byte("XXXX"), valid[4:]...)
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 2
	oversized := append([]byte(nil), valid...)
	oversized[16], oversized[17], oversized[18], oversized[19] = 0xFF, 0xFF, 0xFF, 0x7F

	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"garbage magic", garbageMagic},
		{"wrong version", badVersion},
		{"oversized length", oversized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var scratch [HeaderSize]byte
			_, err := ReadHeader(bytes.NewReader(tc.in), &scratch)
			var fe *FilterError
			if !errors.As(err, &fe) {
				t.Fatalf("want FilterError, got %v", err)
			}
			// And via ParseHeader directly, without a reader.
			if _, err := ParseHeader(tc.in); !errors.As(err, &fe) {
				t.Fatalf("ParseHeader: want FilterError, got %v", err)
			}
		})
	}

	t.Run("truncated header", func(t *testing.T) {
		var scratch [HeaderSize]byte
		_, err := ReadHeader(bytes.NewReader(valid[:10]), &scratch)
		if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
		var fe *FilterError
		if errors.As(err, &fe) {
			t.Fatalf("a truncated header is a transport failure, not garbage: %v", err)
		}
	})

	t.Run("clean close", func(t *testing.T) {
		var scratch [HeaderSize]byte
		if _, err := ReadHeader(bytes.NewReader(nil), &scratch); err != io.EOF {
			t.Fatalf("want io.EOF between frames, got %v", err)
		}
	})

	t.Run("truncated payload", func(t *testing.T) {
		h := Header{Op: OpRoute, ID: 1, Len: 100}
		_, err := ReadPayloadInto(strings.NewReader("short"), h, nil)
		if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
	})
}

// TestDecodeGarbagePayloads makes sure corrupt payloads fail decoding
// without panicking or over-allocating.
func TestDecodeGarbagePayloads(t *testing.T) {
	req := protocol.Request{ID: 1, Op: "route", Session: "dev0",
		Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
		Sinks:  []protocol.EndPointMsg{pin(3, 4, 9)}}
	full, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := ParseHeader(full)
	payload := full[HeaderSize:]

	// Every strict prefix of a valid payload must fail cleanly.
	for i := 0; i < len(payload); i++ {
		var back protocol.Request
		if err := DecodeRequest(h, payload[:i], &back, nil); err == nil {
			t.Fatalf("truncated payload [:%d] decoded without error", i)
		}
	}
	// Trailing junk is rejected too.
	var back protocol.Request
	if err := DecodeRequest(h, append(append([]byte(nil), payload...), 0xFF), &back, nil); err == nil {
		t.Fatal("trailing junk decoded without error")
	}
	// Unknown op byte.
	if err := DecodeRequest(Header{Op: 0xEE}, nil, &back, nil); err == nil {
		t.Fatal("unknown op decoded without error")
	}
	// A huge element count bounded only by the varint must be rejected
	// before allocation (count exceeds remaining bytes).
	bad := []byte{0x00, 0x00, 0x01, 0x02, 0x04, 0x07, 0xFF, 0xFF, 0xFF, 0x7F}
	if err := DecodeRequest(Header{Op: OpRoute}, bad, &back, nil); err == nil {
		t.Fatal("oversized sink count decoded without error")
	}
}

// TestEncodeAllocs proves the hot encode path is allocation-free once the
// destination buffers are warm — the codec half of the ~0 allocs/op server
// target.
func TestEncodeAllocs(t *testing.T) {
	req := protocol.Request{ID: 1, Op: "route", Session: "dev0",
		Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
		Sinks:  []protocol.EndPointMsg{pin(3, 4, 9)}}
	frames := bytes.Repeat([]byte{0x5A}, 512)
	resp := protocol.Response{ID: 1, Epoch: 1, FrameN: 3, Frames: frames}

	reqBuf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		if _, err = AppendRequest(reqBuf[:0], &req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendRequest allocates %.1f times per op, want 0", n)
	}

	respBuf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		head, raw, err := AppendResponse(respBuf[:0], OpRoute, &resp)
		if err != nil || len(head) == 0 || len(raw) != len(frames) {
			t.Fatalf("AppendResponse: %v", err)
		}
	}); n != 0 {
		t.Fatalf("AppendResponse allocates %.1f times per op, want 0", n)
	}
}

// TestInterner checks that repeated names stop allocating and decode to
// the same backing string.
func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.intern([]byte("session-0"))
	b := in.intern([]byte("session-0"))
	if a != b {
		t.Fatal("interner returned different strings for equal bytes")
	}
	if n := testing.AllocsPerRun(100, func() {
		if in.intern([]byte("session-0")) != "session-0" {
			t.Fatal("bad intern")
		}
	}); n != 0 {
		t.Fatalf("warm intern allocates %.1f times, want 0", n)
	}
}

func BenchmarkAppendRequestRoute(b *testing.B) {
	req := protocol.Request{ID: 1, Op: "route", Session: "dev0",
		Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
		Sinks:  []protocol.EndPointMsg{pin(3, 4, 9)}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = AppendRequest(buf[:0], &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendResponseFrames(b *testing.B) {
	resp := protocol.Response{ID: 1, Epoch: 1, FrameN: 8,
		Frames: bytes.Repeat([]byte{0x5A}, 4096)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		head, _, err := AppendResponse(buf[:0], OpRoute, &resp)
		if err != nil {
			b.Fatal(err)
		}
		buf = head[:0]
	}
}

func BenchmarkDecodeRequestRoute(b *testing.B) {
	req := protocol.Request{ID: 1, Op: "route", Session: "dev0",
		Source: &protocol.EndPointMsg{Pin: &protocol.PinMsg{Row: 1, Col: 2, Wire: 7}},
		Sinks:  []protocol.EndPointMsg{pin(3, 4, 9)}}
	full, err := AppendRequest(nil, &req)
	if err != nil {
		b.Fatal(err)
	}
	h, _ := ParseHeader(full)
	payload := full[HeaderSize:]
	in := NewInterner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var back protocol.Request
		if err := DecodeRequest(h, payload, &back, in); err != nil {
			b.Fatal(err)
		}
	}
}
