package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jbits"
	"repro/internal/server/protocol"
)

// Options tune the daemon.
type Options struct {
	// QueueDepth bounds each session's request queue (default 64).
	QueueDepth int
	// Parallelism is passed to every session router's negotiated batch
	// routing (0 = GOMAXPROCS).
	Parallelism int
	// RouteCache is passed to every session router: the relocation-aware
	// route cache (zero value = enabled; core.CacheOff disables).
	RouteCache core.CacheMode
	// EnqueueTimeout is how long a request waits for a slot in a full
	// session queue before the server answers busy (default 5s).
	EnqueueTimeout time.Duration
	// ParanoidVerify is passed to every session router: after each
	// automatic routing op the committed frames are re-extracted and
	// audited by the bitstream oracle (see core.Options.ParanoidVerify).
	ParanoidVerify bool
}

func (o Options) enqueueTimeout() time.Duration {
	if o.EnqueueTimeout <= 0 {
		return 5 * time.Second
	}
	return o.EnqueueTimeout
}

// Fleet is the coordinator hook: when attached with SetFleet, per-device
// ops (connect included — that is where placement happens) are delegated to
// it instead of the static session table. internal/server/fleet implements
// it.
type Fleet interface {
	// Submit handles one per-session request end to end: placement and
	// admission on connect, board lookup and failover handling on
	// everything else.
	Submit(ctx context.Context, req *Request) *Response
	// Sessions lists the admitted logical session names.
	Sessions() []string
	// Stats snapshots the coordinator counters and per-board sections.
	Stats() *FleetStatsMsg
	// Shutdown stops health probing and drains the board workers.
	Shutdown(ctx context.Context) error
}

// Server is the jrouted daemon: many named device sessions behind one
// TCP listener speaking the framed JSON service protocol.
type Server struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Worker
	fleet    Fleet
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closing  bool

	connWG sync.WaitGroup
}

// New creates an empty daemon; add devices with AddDevice (or attach a
// fleet with SetFleet), then Start.
func New(opts Options) *Server {
	return &Server{
		opts:     opts,
		sessions: make(map[string]*Worker),
		conns:    make(map[net.Conn]struct{}),
	}
}

// AddDevice creates a named static device session. archName may be
// "virtex" (default) or "kestrel".
func (s *Server) AddDevice(name, archName string, rows, cols int) error {
	if name == "" {
		return fmt.Errorf("server: device needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return fmt.Errorf("server: shutting down")
	}
	if _, dup := s.sessions[name]; dup {
		return fmt.Errorf("server: device %q already exists", name)
	}
	w, err := NewWorker(WorkerConfig{Name: name, Arch: archName, Rows: rows, Cols: cols, Opts: s.opts})
	if err != nil {
		return err
	}
	s.sessions[name] = w
	return nil
}

// SetFleet attaches a fleet coordinator: all per-device traffic is routed
// through it, and the daemon advertises the "fleet" capability. Attach
// before Start.
func (s *Server) SetFleet(f Fleet) {
	s.mu.Lock()
	s.fleet = f
	s.mu.Unlock()
}

// caps lists the capability flags the hello response advertises.
func (s *Server) caps() []string {
	var caps []string
	s.mu.Lock()
	fleet := s.fleet
	s.mu.Unlock()
	if fleet != nil {
		caps = append(caps, protocol.CapFleet)
	}
	if s.opts.ParanoidVerify {
		caps = append(caps, protocol.CapParanoid)
	}
	return caps
}

// Start listens on addr and serves connections in the background,
// returning the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: shutting down")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	helloed := false
	for {
		op, payload, err := jbits.ReadFrame(conn)
		if err != nil {
			return // EOF, deadline (shutdown), or transport failure
		}
		if op != OpService {
			msg := fmt.Sprintf("server: unknown opcode %#x", op)
			if jbits.WriteFrame(conn, OpService|jbits.RespFlag, errorJSON(0, msg, protocol.CodeBadRequest)) != nil {
				return
			}
			continue
		}
		var req Request
		resp := new(Response)
		if err := json.Unmarshal(payload, &req); err != nil {
			resp.Err = fmt.Sprintf("server: bad request: %v", err)
			resp.ErrorCode = protocol.CodeBadRequest
		} else if req.Op == "hello" {
			resp = s.hello(&req)
			helloed = resp.Err == ""
		} else if !helloed {
			// Pre-v2 clients never sent hello; give them one clear typed
			// error instead of undefined behaviour mid-session.
			resp = &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
				Err: fmt.Sprintf("server: hello handshake required before %q (server speaks protocol v%d)",
					req.Op, protocol.Version)}
		} else {
			resp = s.dispatch(&req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			out = errorJSON(req.ID, fmt.Sprintf("server: encoding response: %v", err), protocol.CodeInternal)
		}
		if err := jbits.WriteFrame(conn, OpService|jbits.RespFlag, out); err != nil {
			return
		}
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			return // graceful shutdown: in-flight request answered, stop
		}
	}
}

// hello answers the version handshake.
func (s *Server) hello(req *Request) *Response {
	if req.Hello == nil {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
			Err: "server: hello without version"}
	}
	if req.Hello.Version != protocol.Version {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
			Err: fmt.Sprintf("server: protocol version mismatch: client speaks v%d, server speaks v%d",
				req.Hello.Version, protocol.Version)}
	}
	return &Response{ID: req.ID, Hello: &HelloMsg{Version: protocol.Version, Caps: s.caps()}}
}

func errorJSON(id uint64, msg, code string) []byte {
	out, _ := json.Marshal(&Response{ID: id, Err: msg, ErrorCode: code})
	return out
}

// reqContext derives the request context from the deadline the client
// propagated over the wire.
func reqContext(req *Request) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		return context.WithTimeout(context.Background(), time.Duration(req.TimeoutMillis)*time.Millisecond)
	}
	return context.Background(), func() {}
}

// dispatch routes a request: server-level ops run inline; per-device ops go
// through the owning worker's bounded queue, or the fleet coordinator when
// one is attached.
func (s *Server) dispatch(req *Request) *Response {
	s.mu.Lock()
	fleet := s.fleet
	s.mu.Unlock()
	switch req.Op {
	case "devices":
		resp := &Response{ID: req.ID}
		if fleet != nil {
			resp.Devices = fleet.Sessions()
			return resp
		}
		s.mu.Lock()
		for name := range s.sessions {
			resp.Devices = append(resp.Devices, name)
		}
		s.mu.Unlock()
		return resp
	case "statsz":
		return &Response{ID: req.ID, Stats: s.Stats()}
	}
	ctx, cancel := reqContext(req)
	defer cancel()
	if fleet != nil {
		resp := fleet.Submit(ctx, req)
		resp.ID = req.ID
		return resp
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	s.mu.Unlock()
	if !ok {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeNoDevice,
			Err: fmt.Sprintf("server: no device %q", req.Session)}
	}
	return sess.Submit(ctx, req)
}

// Stats snapshots every session's counters — the statsz payload — plus the
// fleet section when a coordinator is attached.
func (s *Server) Stats() *StatsMsg {
	s.mu.Lock()
	sessions := make([]*Worker, 0, len(s.sessions))
	for _, w := range s.sessions {
		sessions = append(sessions, w)
	}
	fleet := s.fleet
	s.mu.Unlock()
	out := &StatsMsg{Sessions: make(map[string]SessionStatsMsg, len(sessions))}
	for _, w := range sessions {
		out.Sessions[w.Name()] = w.StatsSnapshot()
	}
	if fleet != nil {
		out.Fleet = fleet.Stats()
	}
	return out
}

// Shutdown stops the daemon gracefully: no new connections are accepted,
// every in-flight request is answered and every queued route drains, then
// the session workers (and the fleet, when attached) exit. The context
// bounds the wait; on expiry the remaining connections are closed forcibly
// and the error reported.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.closing = true
	ln := s.ln
	// Unblock connection handlers idling in ReadFrame; handlers that are
	// mid-request finish processing and writing first.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	var err error
	select {
	case <-connsDone:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-connsDone
		err = fmt.Errorf("server: shutdown deadline exceeded, connections closed forcibly")
	}

	// All submitters are gone; close the queues and wait for the workers
	// to drain what is left.
	s.mu.Lock()
	sessions := make([]*Worker, 0, len(s.sessions))
	for _, w := range s.sessions {
		sessions = append(sessions, w)
	}
	fleet := s.fleet
	s.mu.Unlock()
	for _, w := range sessions {
		w.Close()
	}
	for _, w := range sessions {
		select {
		case <-w.Done():
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("server: shutdown deadline exceeded draining session %s", w.Name())
			}
		}
	}
	if fleet != nil {
		if ferr := fleet.Shutdown(ctx); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
