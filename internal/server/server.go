package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jbits"
)

// Options tune the daemon.
type Options struct {
	// QueueDepth bounds each session's request queue (default 64).
	QueueDepth int
	// Parallelism is passed to every session router's negotiated batch
	// routing (0 = GOMAXPROCS).
	Parallelism int
	// RouteCache is passed to every session router: the relocation-aware
	// route cache (zero value = enabled; core.CacheOff disables).
	RouteCache core.CacheMode
	// EnqueueTimeout is how long a request waits for a slot in a full
	// session queue before the server answers busy (default 5s).
	EnqueueTimeout time.Duration
	// ParanoidVerify is passed to every session router: after each
	// automatic routing op the committed frames are re-extracted and
	// audited by the bitstream oracle (see core.Options.ParanoidVerify).
	ParanoidVerify bool
}

func (o Options) enqueueTimeout() time.Duration {
	if o.EnqueueTimeout <= 0 {
		return 5 * time.Second
	}
	return o.EnqueueTimeout
}

// Server is the jrouted daemon: many named device sessions behind one
// TCP listener speaking the framed JSON service protocol.
type Server struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*session
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closing  bool

	connWG sync.WaitGroup
}

// New creates an empty daemon; add devices with AddDevice, then Start.
func New(opts Options) *Server {
	return &Server{
		opts:     opts,
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
}

// AddDevice creates a named device session. archName may be "virtex"
// (default) or "kestrel".
func (s *Server) AddDevice(name, archName string, rows, cols int) error {
	if name == "" {
		return fmt.Errorf("server: device needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return fmt.Errorf("server: shutting down")
	}
	if _, dup := s.sessions[name]; dup {
		return fmt.Errorf("server: device %q already exists", name)
	}
	sess, err := newSession(name, archName, rows, cols, s.opts)
	if err != nil {
		return err
	}
	s.sessions[name] = sess
	return nil
}

// Start listens on addr and serves connections in the background,
// returning the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: shutting down")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	for {
		op, payload, err := jbits.ReadFrame(conn)
		if err != nil {
			return // EOF, deadline (shutdown), or transport failure
		}
		if op != OpService {
			msg := fmt.Sprintf("server: unknown opcode %#x", op)
			if jbits.WriteFrame(conn, OpService|jbits.RespFlag, errorJSON(0, msg)) != nil {
				return
			}
			continue
		}
		var req Request
		resp := new(Response)
		if err := json.Unmarshal(payload, &req); err != nil {
			resp.Err = fmt.Sprintf("server: bad request: %v", err)
		} else {
			resp = s.dispatch(&req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			out = errorJSON(req.ID, fmt.Sprintf("server: encoding response: %v", err))
		}
		if err := jbits.WriteFrame(conn, OpService|jbits.RespFlag, out); err != nil {
			return
		}
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			return // graceful shutdown: in-flight request answered, stop
		}
	}
}

func errorJSON(id uint64, msg string) []byte {
	out, _ := json.Marshal(&Response{ID: id, Err: msg})
	return out
}

// dispatch routes a request: server-level ops run inline; per-device ops
// go through the owning session's bounded queue.
func (s *Server) dispatch(req *Request) *Response {
	switch req.Op {
	case "devices":
		resp := &Response{ID: req.ID}
		s.mu.Lock()
		for name := range s.sessions {
			resp.Devices = append(resp.Devices, name)
		}
		s.mu.Unlock()
		return resp
	case "statsz":
		return &Response{ID: req.ID, Stats: s.Stats()}
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	s.mu.Unlock()
	if !ok {
		return &Response{ID: req.ID, Err: fmt.Sprintf("server: no device %q", req.Session)}
	}
	return sess.submit(req, s.opts.enqueueTimeout())
}

// Stats snapshots every session's counters — the statsz payload.
func (s *Server) Stats() *StatsMsg {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := &StatsMsg{Sessions: make(map[string]SessionStatsMsg, len(sessions))}
	for _, sess := range sessions {
		out.Sessions[sess.name] = sess.m.snapshot(len(sess.queue))
	}
	return out
}

// Shutdown stops the daemon gracefully: no new connections are accepted,
// every in-flight request is answered and every queued route drains, then
// the session workers exit. The context bounds the wait; on expiry the
// remaining connections are closed forcibly and the error reported.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.closing = true
	ln := s.ln
	// Unblock connection handlers idling in ReadFrame; handlers that are
	// mid-request finish processing and writing first.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	var err error
	select {
	case <-connsDone:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-connsDone
		err = fmt.Errorf("server: shutdown deadline exceeded, connections closed forcibly")
	}

	// All submitters are gone; close the queues and wait for the workers
	// to drain what is left.
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		close(sess.queue)
	}
	for _, sess := range sessions {
		select {
		case <-sess.done:
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("server: shutdown deadline exceeded draining session %s", sess.name)
			}
		}
	}
	return err
}
