package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/core/library"
	"repro/internal/jbits"
	"repro/internal/server/protocol"
	v3 "repro/internal/server/protocol/v3"
)

// Options tune the daemon.
type Options struct {
	// QueueDepth bounds each session's request queue (default 64).
	QueueDepth int
	// Parallelism is passed to every session router's negotiated batch
	// routing (0 = GOMAXPROCS).
	Parallelism int
	// RouteCache is passed to every session router: the relocation-aware
	// route cache (zero value = enabled; core.CacheOff disables).
	RouteCache core.CacheMode
	// EnqueueTimeout is how long a request waits for a slot in a full
	// session queue before the server answers busy (default 5s).
	EnqueueTimeout time.Duration
	// ParanoidVerify is passed to every session router: after each
	// automatic routing op the committed frames are re-extracted and
	// audited by the bitstream oracle (see core.Options.ParanoidVerify).
	ParanoidVerify bool
	// DisableBinary stops the daemon from advertising (and accepting) the
	// binary v3 framing; every connection then stays on framed JSON v2.
	DisableBinary bool
	// Library, when set, seeds every session router with a persistent
	// route-template library, shared read-only across all workers. New
	// audits an unaudited library once so N workers do not each re-sweep
	// it. See core.Options.Library.
	Library *library.Library
	// LibraryPath loads the template library from a file, best-effort: a
	// missing or unreadable file leaves sessions library-less. Daemons
	// that must fail loudly (jrouted -library) load the file themselves
	// and set Library instead. Ignored when Library is set.
	LibraryPath string
	// Auth, when set, must map the hello bearer token to a tenant name.
	// A non-nil error rejects the handshake with CodeUnauthorized. The
	// resolved tenant is stamped on every request the connection sends
	// (Request.Tenant), so downstream admission can trust it. Nil Auth
	// (every plain daemon) admits every hello as the anonymous tenant "".
	Auth func(token string) (tenant string, err error)
}

func (o Options) enqueueTimeout() time.Duration {
	if o.EnqueueTimeout <= 0 {
		return 5 * time.Second
	}
	return o.EnqueueTimeout
}

// Fleet is the coordinator hook: when attached with SetFleet, per-device
// ops (connect included — that is where placement happens) are delegated to
// it instead of the static session table. internal/server/fleet implements
// it.
type Fleet interface {
	// Submit handles one per-session request end to end: placement and
	// admission on connect, board lookup and failover handling on
	// everything else.
	Submit(ctx context.Context, req *Request) *Response
	// Sessions lists the admitted logical session names.
	Sessions() []string
	// Stats snapshots the coordinator counters and per-board sections.
	Stats() *FleetStatsMsg
	// Shutdown stops health probing and drains the board workers.
	Shutdown(ctx context.Context) error
}

// GatewayStatser is the optional Fleet extension a gateway coordinator
// implements: its counters ride statsz under the "gateway" key instead of
// the fleet section (which describes boards, not backends).
type GatewayStatser interface {
	GatewayStats() *protocol.GatewayStatsMsg
}

// Server is the jrouted daemon: many named device sessions behind one
// TCP listener speaking the framed JSON service protocol.
type Server struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*Worker
	fleet    Fleet
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closing  bool

	wmu  sync.Mutex
	wire protocol.WireStatsMsg

	connWG sync.WaitGroup
}

// New creates an empty daemon; add devices with AddDevice (or attach a
// fleet with SetFleet), then Start.
func New(opts Options) *Server {
	if opts.Library == nil && opts.LibraryPath != "" {
		if lib, _, err := library.Load(opts.LibraryPath); err == nil {
			opts.Library = lib
		}
	}
	// Audit once here rather than once per worker: every session router
	// shares the audited copy read-only. An audit failure (unknown arch)
	// leaves the library unaudited; workers then reject it individually
	// and count it skipped.
	if lib := opts.Library; lib != nil && !lib.Audited() {
		if a, err := archByName(lib.Arch()); err == nil {
			if audited, _, err := lib.Audit(a); err == nil {
				opts.Library = audited
			}
		}
	}
	return &Server{
		opts:     opts,
		sessions: make(map[string]*Worker),
		conns:    make(map[net.Conn]struct{}),
	}
}

// AddDevice creates a named static device session. archName may be
// "virtex" (default) or "kestrel".
func (s *Server) AddDevice(name, archName string, rows, cols int) error {
	if name == "" {
		return fmt.Errorf("server: device needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return fmt.Errorf("server: shutting down")
	}
	if _, dup := s.sessions[name]; dup {
		return fmt.Errorf("server: device %q already exists", name)
	}
	w, err := NewWorker(WorkerConfig{Name: name, Arch: archName, Rows: rows, Cols: cols, Opts: s.opts})
	if err != nil {
		return err
	}
	s.sessions[name] = w
	return nil
}

// SetFleet attaches a fleet coordinator: all per-device traffic is routed
// through it, and the daemon advertises the "fleet" capability. Attach
// before Start.
func (s *Server) SetFleet(f Fleet) {
	s.mu.Lock()
	s.fleet = f
	s.mu.Unlock()
}

// caps lists the capability flags the hello response advertises.
func (s *Server) caps() []string {
	var caps []string
	s.mu.Lock()
	fleet := s.fleet
	s.mu.Unlock()
	if fleet != nil {
		caps = append(caps, protocol.CapFleet)
	}
	if s.opts.ParanoidVerify {
		caps = append(caps, protocol.CapParanoid)
	}
	if !s.opts.DisableBinary {
		caps = append(caps, protocol.CapBinV3)
	}
	return caps
}

// noteConn records which framing a connection negotiated.
func (s *Server) noteConn(binary bool) {
	s.wmu.Lock()
	if binary {
		s.wire.ConnsV3++
	} else {
		s.wire.ConnsV2++
	}
	s.wmu.Unlock()
}

// noteIO records one request/response exchange's wire traffic.
func (s *Server) noteIO(binary bool, bytesIn, bytesOut int) {
	s.wmu.Lock()
	s.wire.FramesIn++
	s.wire.FramesOut++
	s.wire.BytesIn += bytesIn
	s.wire.BytesOut += bytesOut
	if binary {
		s.wire.FramesV3In++
		s.wire.FramesV3Out++
		s.wire.BytesV3In += bytesIn
		s.wire.BytesV3Out += bytesOut
	}
	s.wmu.Unlock()
}

// noteMalformed counts one v3 frame rejected before dispatch.
func (s *Server) noteMalformed() {
	s.wmu.Lock()
	s.wire.Malformed++
	s.wmu.Unlock()
}

// Start listens on addr and serves connections in the background,
// returning the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: shutting down")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	helloed := false
	counted := false
	tenant := "" // resolved once, at hello, from the bearer token
	for {
		op, payload, err := jbits.ReadFrame(conn)
		if err != nil {
			return // EOF, deadline (shutdown), or transport failure
		}
		if op != OpService {
			jbits.RecycleFrame(payload)
			msg := fmt.Sprintf("server: unknown opcode %#x", op)
			if jbits.WriteFrame(conn, OpService|jbits.RespFlag, errorJSON(0, msg, protocol.CodeBadRequest)) != nil {
				return
			}
			continue
		}
		inBytes := len(payload)
		var req Request
		resp := new(Response)
		toV3 := false
		if err := json.Unmarshal(payload, &req); err != nil {
			resp.Err = fmt.Sprintf("server: bad request: %v", err)
			resp.ErrorCode = protocol.CodeBadRequest
		} else if req.Op == "hello" {
			resp, tenant = s.hello(&req)
			helloed = resp.Err == ""
			// The connection switches to the binary v3 framing when the
			// client echoed the capability in its hello and the server
			// advertises it — immediately after this (JSON) response.
			toV3 = helloed && !s.opts.DisableBinary && helloHasCap(req.Hello, protocol.CapBinV3)
			if helloed && !counted {
				counted = true
				s.noteConn(toV3)
			}
		} else if !helloed {
			// Pre-v2 clients never sent hello; give them one clear typed
			// error instead of undefined behaviour mid-session.
			resp = &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
				Err: fmt.Sprintf("server: hello handshake required before %q (server speaks protocol v%d)",
					req.Op, protocol.Version)}
		} else {
			req.Tenant = tenant
			resp = s.dispatch(&req)
		}
		// The request has been fully decoded; the frame buffer can return
		// to the pool before the (potentially large) response is built.
		jbits.RecycleFrame(payload)
		out, err := json.Marshal(resp)
		if err != nil {
			out = errorJSON(req.ID, fmt.Sprintf("server: encoding response: %v", err), protocol.CodeInternal)
		}
		putStream(resp.Frames) // marshal copied the dirty frames; recycle
		resp.Frames = nil
		werr := jbits.WriteFrame(conn, OpService|jbits.RespFlag, out)
		s.noteIO(false, inBytes, len(out))
		if werr != nil {
			return
		}
		if toV3 {
			s.serveV3(conn, tenant)
			return
		}
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			return // graceful shutdown: in-flight request answered, stop
		}
	}
}

// helloHasCap reports whether a hello message requested a capability.
func helloHasCap(h *HelloMsg, cap string) bool {
	if h == nil {
		return false
	}
	for _, c := range h.Caps {
		if c == cap {
			return true
		}
	}
	return false
}

// serveV3 is the per-connection loop after the binary switch: fixed-header
// framing, varint op records, and the zero-copy frame path — a mutating
// op's dirty frames go from the worker's pooled stream buffer to the
// socket in one vectored write, with no intermediate marshal. Read buffers
// are reused across requests; a frame failing the pre-parse filter is
// answered with a typed malformed error and the connection closed (the
// byte stream can no longer be trusted to be frame-aligned).
func (s *Server) serveV3(conn net.Conn, tenant string) {
	var hdr [v3.HeaderSize]byte
	var payload []byte // reused request-payload buffer
	var out []byte     // reused response-encode buffer
	var bufs net.Buffers
	interner := v3.NewInterner()
	for {
		h, err := v3.ReadHeader(conn, &hdr)
		if err != nil {
			var fe *v3.FilterError
			if errors.As(err, &fe) {
				s.noteMalformed()
				head, _, eerr := v3.AppendResponse(out[:0], v3.OpDevices,
					&Response{Err: fe.Error(), ErrorCode: protocol.CodeMalformed})
				if eerr == nil {
					_ = v3.WriteMsg(conn, &bufs, head, nil)
				}
			}
			return // EOF, deadline (shutdown), garbage, or transport failure
		}
		payload, err = v3.ReadPayloadInto(conn, h, payload)
		if err != nil {
			return
		}
		// A fresh Request per message: the worker may still hold a
		// reference after a canceled Submit returns, so the struct cannot
		// be reused across loop iterations.
		req := new(Request)
		var resp *Response
		if derr := v3.DecodeRequest(h, payload, req, interner); derr != nil {
			s.noteMalformed()
			resp = &Response{ID: h.ID, Err: derr.Error(), ErrorCode: protocol.CodeMalformed}
		} else {
			req.Tenant = tenant
			resp = s.dispatch(req)
		}
		head, raw, err := v3.AppendResponse(out[:0], h.Op, resp)
		if err != nil {
			head, raw, err = v3.AppendResponse(out[:0], h.Op,
				&Response{ID: h.ID, Err: fmt.Sprintf("server: encoding response: %v", err),
					ErrorCode: protocol.CodeInternal})
			if err != nil {
				return
			}
		}
		out = head[:0] // keep the grown capacity for the next response
		werr := v3.WriteMsg(conn, &bufs, head, raw)
		putStream(resp.Frames) // frames are on the wire; recycle the buffer
		resp.Frames = nil
		s.noteIO(true, len(payload), len(head)+len(raw))
		if werr != nil {
			return
		}
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			return // graceful shutdown: in-flight request answered, stop
		}
	}
}

// hello answers the version handshake and, when an authenticator is
// configured, resolves the bearer token to the connection's tenant.
func (s *Server) hello(req *Request) (*Response, string) {
	if req.Hello == nil {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
			Err: "server: hello without version"}, ""
	}
	if req.Hello.Version != protocol.Version {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeVersion,
			Err: fmt.Sprintf("server: protocol version mismatch: client speaks v%d, server speaks v%d",
				req.Hello.Version, protocol.Version)}, ""
	}
	tenant := ""
	if s.opts.Auth != nil {
		var err error
		tenant, err = s.opts.Auth(req.Hello.Token)
		if err != nil {
			return &Response{ID: req.ID, ErrorCode: protocol.CodeUnauthorized,
				Err: fmt.Sprintf("server: %v", err)}, ""
		}
	}
	return &Response{ID: req.ID, Hello: &HelloMsg{Version: protocol.Version, Caps: s.caps()}}, tenant
}

func errorJSON(id uint64, msg, code string) []byte {
	out, _ := json.Marshal(&Response{ID: id, Err: msg, ErrorCode: code})
	return out
}

// reqContext derives the request context from the deadline the client
// propagated over the wire.
func reqContext(req *Request) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		return context.WithTimeout(context.Background(), time.Duration(req.TimeoutMillis)*time.Millisecond)
	}
	return context.Background(), func() {}
}

// dispatch routes a request: server-level ops run inline; per-device ops go
// through the owning worker's bounded queue, or the fleet coordinator when
// one is attached.
func (s *Server) dispatch(req *Request) *Response {
	s.mu.Lock()
	fleet := s.fleet
	s.mu.Unlock()
	switch req.Op {
	case "devices":
		resp := &Response{ID: req.ID}
		if fleet != nil {
			resp.Devices = fleet.Sessions()
			return resp
		}
		s.mu.Lock()
		for name := range s.sessions {
			resp.Devices = append(resp.Devices, name)
		}
		s.mu.Unlock()
		return resp
	case "statsz":
		return &Response{ID: req.ID, Stats: s.Stats()}
	}
	ctx, cancel := reqContext(req)
	defer cancel()
	if fleet != nil {
		resp := fleet.Submit(ctx, req)
		resp.ID = req.ID
		return resp
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	s.mu.Unlock()
	if !ok {
		return &Response{ID: req.ID, ErrorCode: protocol.CodeNoDevice,
			Err: fmt.Sprintf("server: no device %q", req.Session)}
	}
	return sess.Submit(ctx, req)
}

// Stats snapshots every session's counters — the statsz payload — plus the
// fleet section when a coordinator is attached.
func (s *Server) Stats() *StatsMsg {
	s.mu.Lock()
	sessions := make([]*Worker, 0, len(s.sessions))
	for _, w := range s.sessions {
		sessions = append(sessions, w)
	}
	fleet := s.fleet
	s.mu.Unlock()
	out := &StatsMsg{Sessions: make(map[string]SessionStatsMsg, len(sessions))}
	for _, w := range sessions {
		out.Sessions[w.Name()] = w.StatsSnapshot()
	}
	if fleet != nil {
		out.Fleet = fleet.Stats()
		if gw, ok := fleet.(GatewayStatser); ok {
			out.Gateway = gw.GatewayStats()
		}
	}
	s.wmu.Lock()
	wire := s.wire
	s.wmu.Unlock()
	out.Wire = &wire
	return out
}

// Shutdown stops the daemon gracefully: no new connections are accepted,
// every in-flight request is answered and every queued route drains, then
// the session workers (and the fleet, when attached) exit. The context
// bounds the wait; on expiry the remaining connections are closed forcibly
// and the error reported.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.closing = true
	ln := s.ln
	// Unblock connection handlers idling in ReadFrame; handlers that are
	// mid-request finish processing and writing first.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	var err error
	select {
	case <-connsDone:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-connsDone
		err = fmt.Errorf("server: shutdown deadline exceeded, connections closed forcibly")
	}

	// All submitters are gone; close the queues and wait for the workers
	// to drain what is left.
	s.mu.Lock()
	sessions := make([]*Worker, 0, len(s.sessions))
	for _, w := range s.sessions {
		sessions = append(sessions, w)
	}
	fleet := s.fleet
	s.mu.Unlock()
	for _, w := range sessions {
		w.Close()
	}
	for _, w := range sessions {
		select {
		case <-w.Done():
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("server: shutdown deadline exceeded draining session %s", w.Name())
			}
		}
	}
	if fleet != nil {
		if ferr := fleet.Shutdown(ctx); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
