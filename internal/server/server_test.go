package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startDaemon boots an in-process jrouted with the given devices and
// returns its address; it is shut down at test cleanup.
func startDaemon(t *testing.T, opts server.Options, devices ...string) (string, *server.Server) {
	t.Helper()
	srv := server.New(opts)
	for _, d := range devices {
		if err := srv.AddDevice(d, "virtex", 16, 24); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return addr, srv
}

// driveSession runs one client session through the full JRoute surface:
// route -> trace -> unroute, core instantiation, bus routing, batch
// routing, and a §3.3 core replacement — then checks the mirrored
// bitstream against the server's readback.
func driveSession(t *testing.T, addr, dev string) error {
	ctx := context.Background()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer c.Close()
	s, err := c.Session(ctx, dev)
	if err != nil {
		return err
	}

	// Point-to-point route, trace, unroute (the §3.1 worked example).
	src := client.Pin(core.NewPin(5, 7, arch.S1YQ))
	sink := client.Pin(core.NewPin(6, 8, arch.S0F3))
	if err := s.Route(ctx, src, sink); err != nil {
		return fmt.Errorf("route: %w", err)
	}
	net, err := s.Trace(ctx, src)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(net.Sinks) != 1 || len(net.Pips) == 0 {
		return fmt.Errorf("trace returned %d sinks, %d pips", len(net.Sinks), len(net.Pips))
	}
	if err := s.Unroute(ctx, src); err != nil {
		return fmt.Errorf("unroute: %w", err)
	}
	if net, err := s.Trace(ctx, src); err != nil {
		return fmt.Errorf("trace after unroute: %w", err)
	} else if len(net.Pips) != 0 || len(net.Sinks) != 0 {
		return errors.New("net still populated after unroute")
	}

	// Negotiated batch routing of a small crossing bus.
	var nets []server.NetMsg
	for i := 0; i < 4; i++ {
		nets = append(nets, server.NetMsg{
			Source: client.Pin(core.NewPin(10+i, 2, arch.OutPin(i))),
			Sinks:  []server.EndPointMsg{client.Pin(core.NewPin(13-i, 6, arch.Input(i)))},
		})
	}
	if err := s.RouteBatch(ctx, nets); err != nil {
		return fmt.Errorf("batch: %w", err)
	}

	// Core instantiation: constant multiplier feeding a register.
	k := uint64(3)
	if err := s.NewCore(ctx, server.CoreMsg{Name: "mul", Kind: "constmul", Row: 4, Col: 10, K: &k, KBits: 2}); err != nil {
		return fmt.Errorf("core_new mul: %w", err)
	}
	if err := s.NewCore(ctx, server.CoreMsg{Name: "reg", Kind: "register", Row: 4, Col: 16, Bits: 6}); err != nil {
		return fmt.Errorf("core_new reg: %w", err)
	}
	var srcs, dsts []server.EndPointMsg
	for i := 0; i < 6; i++ {
		srcs = append(srcs, client.PortRef("mul", "p", i))
		dsts = append(dsts, client.PortRef("reg", "d", i))
	}
	if err := s.RouteBus(ctx, srcs, dsts); err != nil {
		return fmt.Errorf("bus p->d: %w", err)
	}
	// External drive into the multiplier input port.
	if err := s.Route(ctx, client.Pin(core.NewPin(2, 2, arch.S0X)), client.PortRef("mul", "x", 0)); err != nil {
		return fmt.Errorf("route into x0: %w", err)
	}

	// §3.3 replacement: retune K and relocate; remembered connections are
	// restored against the new placement.
	k2 := uint64(2)
	if err := s.ReplaceCore(ctx, server.CoreMsg{Name: "mul", Row: 9, Col: 10, K: &k2}); err != nil {
		return fmt.Errorf("core_replace: %w", err)
	}
	if _, err := s.Trace(ctx, client.PortRef("mul", "p", 0)); err != nil {
		return fmt.Errorf("trace after replace: %w", err)
	}

	// The acceptance check: the mirror, advanced only by pushed partial
	// frames since connect, must be byte-identical to the server's full
	// configuration.
	if s.FramesApplied == 0 {
		return errors.New("no partial frames were pushed")
	}
	// The patched bitstream must also decode into a legal routing state.
	if err := s.SyncMirror(); err != nil {
		return err
	}
	mine, err := s.Mirror.FullConfig()
	if err != nil {
		return err
	}
	theirs, err := s.Readback(ctx)
	if err != nil {
		return err
	}
	if !bytes.Equal(mine, theirs) {
		return fmt.Errorf("mirror diverged from server bitstream (%d vs %d bytes)", len(mine), len(theirs))
	}
	return nil
}

// TestServiceEndToEnd is the acceptance test: an in-process daemon serving
// two devices, two concurrent client sessions driving the full surface,
// and byte-identical mirrors at the end of each.
func TestServiceEndToEnd(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "alpha", "beta")
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, dev := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(dev string) {
			defer wg.Done()
			if err := driveSession(t, addr, dev); err != nil {
				errs <- fmt.Errorf("%s: %w", dev, err)
			}
		}(dev)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServiceErrors: unknown devices, unknown ops, bad endpoints and
// contended routes surface as errors without killing the connection.
func TestServiceErrors(t *testing.T) {
	ctx := context.Background()
	addr, _ := startDaemon(t, server.Options{}, "dev")
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Session(ctx, "nope"); err == nil {
		t.Error("connect to unknown device succeeded")
	}
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	// Unroute of an unrouted net errors but the session survives.
	if err := s.Unroute(ctx, client.Pin(core.NewPin(5, 7, arch.S1YQ))); err == nil {
		t.Error("unroute of unrouted net succeeded")
	}
	// Bad wire number.
	if err := s.Route(ctx, server.EndPointMsg{Pin: &server.PinMsg{Row: 1, Col: 1, Wire: 1 << 20}},
		client.Pin(core.NewPin(2, 2, arch.S0F1))); err == nil {
		t.Error("absurd wire number accepted")
	}
	// Port ref into a nonexistent core.
	if err := s.Route(ctx, client.PortRef("ghost", "p", 0), client.Pin(core.NewPin(2, 2, arch.S0F1))); err == nil {
		t.Error("port of unknown core accepted")
	}
	// The session still works after all that.
	if err := s.Route(ctx, client.Pin(core.NewPin(5, 7, arch.S1YQ)), client.Pin(core.NewPin(6, 8, arch.S0F3))); err != nil {
		t.Fatalf("session dead after errors: %v", err)
	}

	devs, err := c.Devices(ctx)
	if err != nil || len(devs) != 1 || devs[0] != "dev" {
		t.Errorf("devices = %v, %v", devs, err)
	}
}

// TestServiceStats: statsz reports routes, rip-ups, shipped frames and
// latency histograms after a little traffic.
func TestServiceStats(t *testing.T) {
	ctx := context.Background()
	addr, _ := startDaemon(t, server.Options{}, "dev")
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	src := client.Pin(core.NewPin(5, 7, arch.S1YQ))
	for i := 0; i < 3; i++ {
		if err := s.Route(ctx, src, client.Pin(core.NewPin(6, 8, arch.S0F3))); err != nil {
			t.Fatal(err)
		}
		if err := s.Unroute(ctx, src); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := stats.Sessions["dev"]
	if !ok {
		t.Fatal("statsz missing session")
	}
	if ss.Routes != 3 {
		t.Errorf("routes = %d, want 3", ss.Routes)
	}
	if ss.RipUps == 0 {
		t.Error("no rip-ups counted despite unroutes")
	}
	if ss.FramesShipped == 0 || ss.BytesShipped == 0 {
		t.Errorf("shipped = %d frames / %d bytes", ss.FramesShipped, ss.BytesShipped)
	}
	route := ss.Ops["route"]
	if route.Count != 3 || route.Errors != 0 {
		t.Errorf("route op stats = %+v", route)
	}
	if route.P99us < route.P50us || route.P50us == 0 {
		t.Errorf("histogram broken: p50=%v p99=%v", route.P50us, route.P99us)
	}
	if _, ok := ss.Ops["unroute"]; !ok {
		t.Error("unroute missing from op stats")
	}
}

// TestServiceStatsPartition: the partition-negotiation counters reach
// statsz — a batch op on the default (partitioned) router reports its
// regions and region-local iterations over the wire.
func TestServiceStatsPartition(t *testing.T) {
	ctx := context.Background()
	addr, _ := startDaemon(t, server.Options{}, "dev")
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	srcs := []server.EndPointMsg{
		client.Pin(core.NewPin(2, 3, arch.S1YQ)),
		client.Pin(core.NewPin(5, 3, arch.S1YQ)),
	}
	dsts := []server.EndPointMsg{
		client.Pin(core.NewPin(2, 9, arch.S0F3)),
		client.Pin(core.NewPin(5, 9, arch.S0F3)),
	}
	if err := s.RouteBusBatch(ctx, srcs, dsts); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := stats.Sessions["dev"]
	if !ok {
		t.Fatal("statsz missing session")
	}
	// On a 16x24 array the inflated bounding boxes span the device, so the
	// batch merges into one region (its iterations counted region- or
	// global-flavoured depending on whether a trimming cut marked nets as
	// crossing) — either way the counters must tick over the wire.
	if ss.PartitionRegions < 1 {
		t.Errorf("partition_regions = %d, want >= 1", ss.PartitionRegions)
	}
	if ss.RegionIterations+ss.GlobalIterations < 1 {
		t.Errorf("no negotiation iterations in statsz: region %d, global %d",
			ss.RegionIterations, ss.GlobalIterations)
	}
	if ss.RegionIterations+ss.GlobalIterations < ss.BatchIterations {
		t.Errorf("iteration split %d+%d below batch_iterations %d",
			ss.RegionIterations, ss.GlobalIterations, ss.BatchIterations)
	}
}

// TestGracefulShutdown: a loaded daemon answers everything in flight,
// drains, and refuses new work afterwards.
func TestGracefulShutdown(t *testing.T) {
	ctx := context.Background()
	srv := server.New(server.Options{})
	if err := srv.AddDevice("dev", "virtex", 16, 24); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	// Traffic in flight while we shut down.
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		src := client.Pin(core.NewPin(5, 7, arch.S1YQ))
		for {
			select {
			case <-stop:
				done <- n
				return
			default:
			}
			if err := s.Route(ctx, src, client.Pin(core.NewPin(6, 8, arch.S0F3))); err != nil {
				done <- n
				return
			}
			n++
			if err := s.Unroute(ctx, src); err != nil {
				done <- n
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	close(stop)
	if n := <-done; n == 0 {
		t.Error("no requests completed before shutdown")
	}
	if _, err := client.Dial(sctx, addr); err == nil {
		t.Error("daemon still accepting after shutdown")
	}
}
