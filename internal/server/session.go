package server

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cores"
	"repro/internal/jbits"
)

// task is one queued request plus its reply channel.
type task struct {
	req  *Request
	resp chan *Response
}

// coreEntry tracks one named core instance living on a session's device.
type coreEntry struct {
	c      cores.Core
	groups []string // port groups the replace flow reconnects
}

// session wraps one named device: a JBits session, a JRoute router, named
// core instances, and the single worker goroutine that owns them all.
// Requests are serialized through the bounded queue; everything behind it
// is therefore single-threaded and needs no locks (metrics excepted).
type session struct {
	name     string
	archName string
	rows     int
	cols     int

	queue chan task
	done  chan struct{} // closed when the worker has drained and exited

	js     *jbits.Session
	router *core.Router
	cores  map[string]*coreEntry
	m      *sessionMetrics
}

func newSession(name, archName string, rows, cols int, opts Options) (*session, error) {
	a, err := archByName(archName)
	if err != nil {
		return nil, err
	}
	js, err := jbits.NewSession(a, rows, cols)
	if err != nil {
		return nil, err
	}
	queueDepth := opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	s := &session{
		name:     name,
		archName: archName,
		rows:     rows,
		cols:     cols,
		queue:    make(chan task, queueDepth),
		done:     make(chan struct{}),
		js:       js,
		router: core.NewRouter(js.Dev, core.Options{
			Parallelism:    opts.Parallelism,
			RouteCache:     opts.RouteCache,
			ParanoidVerify: opts.ParanoidVerify,
		}),
		cores: make(map[string]*coreEntry),
		m:     newSessionMetrics(),
	}
	go s.run()
	return s, nil
}

// archByName maps wire-level architecture names to constructors.
func archByName(name string) (*arch.Arch, error) {
	switch name {
	case "", "virtex":
		return arch.NewVirtex(), nil
	case "kestrel":
		return arch.NewKestrel(), nil
	default:
		return nil, fmt.Errorf("server: unknown architecture %q", name)
	}
}

// run is the worker loop: it owns the router and drains the queue until
// the queue is closed (server shutdown), answering every remaining task.
func (s *session) run() {
	defer close(s.done)
	for t := range s.queue {
		start := time.Now()
		resp := s.handle(t.req)
		s.m.observe(t.req.Op, time.Since(start), resp.Err != "")
		t.resp <- resp
	}
}

// submit enqueues a request with backpressure: if the bounded queue stays
// full past the timeout, the caller gets a busy response instead of
// unbounded blocking.
func (s *session) submit(req *Request, timeout time.Duration) *Response {
	t := task{req: req, resp: make(chan *Response, 1)}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case s.queue <- t:
	case <-timer.C:
		return &Response{ID: req.ID, Busy: true,
			Err: fmt.Sprintf("server: session %s queue full (backpressure)", s.name)}
	}
	return <-t.resp
}

// mutating reports whether an op changes device configuration and must
// therefore ship dirty frames back.
func mutating(op string) bool {
	switch op {
	case "route", "bus", "bus_batch", "batch", "unroute", "reverse_unroute",
		"core_new", "core_replace":
		return true
	}
	return false
}

// handle executes one request on the worker goroutine.
func (s *session) handle(req *Request) *Response {
	resp := &Response{ID: req.ID}
	before := s.router.Stats()
	err := s.dispatch(req, resp)
	if err != nil {
		resp.Err = err.Error()
	}
	after := s.router.Stats()
	s.m.addRouterDelta(after.Routes-before.Routes,
		after.PIPsCleared-before.PIPsCleared,
		after.BatchIterations-before.BatchIterations,
		after.CacheHits-before.CacheHits,
		after.CacheMisses-before.CacheMisses,
		after.ReplayFails-before.ReplayFails,
		s.router.ConnectionCount())
	if err == nil && mutating(req.Op) {
		if ferr := s.shipDirty(resp); ferr != nil {
			resp.Err = ferr.Error()
		}
	}
	return resp
}

// shipDirty serializes the frames dirtied by the op just executed into the
// response and resets the dirty set — the partial-reconfiguration push that
// keeps thin client mirrors in sync.
func (s *session) shipDirty(resp *Response) error {
	n := s.js.Dev.DirtyFrameCount()
	stream, err := s.js.Dev.PartialConfig()
	if err != nil {
		return fmt.Errorf("server: serializing dirty frames: %w", err)
	}
	s.js.Dev.ClearDirty()
	resp.Frames = stream
	resp.FrameN = n
	s.m.addShipped(n, len(stream))
	return nil
}

func (s *session) dispatch(req *Request, resp *Response) error {
	switch req.Op {
	case "connect":
		stream, err := s.js.Dev.FullConfig()
		if err != nil {
			return err
		}
		resp.Rows, resp.Cols, resp.Arch, resp.Config = s.rows, s.cols, s.archName, stream
		return nil

	case "readback":
		stream, err := s.js.Dev.FullConfig()
		if err != nil {
			return err
		}
		resp.Config = stream
		return nil

	case "route":
		src, err := s.endpoint(req.Source)
		if err != nil {
			return err
		}
		sinks, err := s.endpoints(req.Sinks)
		if err != nil {
			return err
		}
		switch len(sinks) {
		case 0:
			return fmt.Errorf("server: route with no sinks")
		case 1:
			return s.router.RouteNet(src, sinks[0])
		default:
			return s.router.RouteFanout(src, sinks)
		}

	case "bus", "bus_batch":
		srcs, err := s.endpoints(req.Sources)
		if err != nil {
			return err
		}
		sinks, err := s.endpoints(req.Sinks)
		if err != nil {
			return err
		}
		if req.Op == "bus" {
			return s.router.RouteBus(srcs, sinks)
		}
		return s.router.RouteBusBatch(srcs, sinks)

	case "batch":
		nets := make([]core.BatchNet, len(req.Nets))
		for i, n := range req.Nets {
			src, err := s.endpoint(&n.Source)
			if err != nil {
				return err
			}
			sinks, err := s.endpoints(n.Sinks)
			if err != nil {
				return err
			}
			nets[i] = core.BatchNet{Source: src, Sinks: sinks}
		}
		return s.router.RouteBatch(nets)

	case "unroute":
		src, err := s.endpoint(req.Source)
		if err != nil {
			return err
		}
		return s.router.Unroute(src)

	case "reverse_unroute":
		sink, err := s.endpoint(req.Source)
		if err != nil {
			return err
		}
		return s.router.ReverseUnroute(sink)

	case "trace", "reverse_trace":
		ep, err := s.endpoint(req.Source)
		if err != nil {
			return err
		}
		var net *core.Net
		if req.Op == "trace" {
			net, err = s.router.Trace(ep)
		} else {
			net, err = s.router.ReverseTrace(ep)
		}
		if err != nil {
			return err
		}
		resp.Net = netToMsg(net)
		return nil

	case "core_new":
		return s.coreNew(req.Core)

	case "core_replace":
		return s.coreReplace(req.Core)

	default:
		return fmt.Errorf("server: unknown op %q", req.Op)
	}
}

func (s *session) coreNew(msg *CoreMsg) error {
	if msg == nil {
		return fmt.Errorf("server: core_new without core description")
	}
	if _, dup := s.cores[msg.Name]; dup {
		return fmt.Errorf("server: core %q already exists", msg.Name)
	}
	c, groups, err := makeCore(msg)
	if err != nil {
		return err
	}
	if err := c.Place(msg.Row, msg.Col); err != nil {
		return err
	}
	if err := c.Implement(s.router); err != nil {
		return err
	}
	s.cores[msg.Name] = &coreEntry{c: c, groups: groups}
	return nil
}

func (s *session) coreReplace(msg *CoreMsg) error {
	if msg == nil {
		return fmt.Errorf("server: core_replace without core description")
	}
	entry, ok := s.cores[msg.Name]
	if !ok {
		return fmt.Errorf("server: no core %q", msg.Name)
	}
	var retune func() error
	if msg.K != nil {
		mul, ok := entry.c.(*cores.ConstMul)
		if !ok {
			return fmt.Errorf("server: core %q is not a constmul, cannot retune K", msg.Name)
		}
		retune = func() error { return mul.SetConstant(s.router, *msg.K) }
	}
	return cores.Replace(s.router, entry.c, msg.Row, msg.Col, entry.groups, retune)
}

// makeCore instantiates a library core from its wire description and
// returns it with the port groups the replace flow must reconnect.
func makeCore(msg *CoreMsg) (cores.Core, []string, error) {
	switch msg.Kind {
	case "constmul":
		k := uint64(0)
		if msg.K != nil {
			k = *msg.K
		}
		c, err := cores.NewConstMul(msg.Name, k, msg.KBits)
		if err != nil {
			return nil, nil, err
		}
		return c, []string{"x", "p"}, nil
	case "register":
		c, err := cores.NewRegister(msg.Name, msg.Bits)
		if err != nil {
			return nil, nil, err
		}
		return c, []string{"d", "q"}, nil
	default:
		return nil, nil, fmt.Errorf("server: unknown core kind %q", msg.Kind)
	}
}

// endpoint resolves a wire endpoint to a core.EndPoint: a raw pin, or a
// port of a named server-side core.
func (s *session) endpoint(m *EndPointMsg) (core.EndPoint, error) {
	if m == nil {
		return nil, fmt.Errorf("server: missing endpoint")
	}
	switch {
	case m.Pin != nil:
		if m.Pin.Wire < 0 || m.Pin.Wire >= s.js.Dev.A.WireCount() {
			return nil, fmt.Errorf("server: wire %d outside architecture", m.Pin.Wire)
		}
		return core.NewPin(m.Pin.Row, m.Pin.Col, arch.Wire(m.Pin.Wire)), nil
	case m.Port != nil:
		entry, ok := s.cores[m.Port.Core]
		if !ok {
			return nil, fmt.Errorf("server: no core %q", m.Port.Core)
		}
		ports := entry.c.Ports(m.Port.Group)
		if m.Port.Index < 0 || m.Port.Index >= len(ports) {
			return nil, fmt.Errorf("server: core %q group %q has no port %d",
				m.Port.Core, m.Port.Group, m.Port.Index)
		}
		return ports[m.Port.Index], nil
	default:
		return nil, fmt.Errorf("server: endpoint is neither pin nor port")
	}
}

func (s *session) endpoints(ms []EndPointMsg) ([]core.EndPoint, error) {
	out := make([]core.EndPoint, len(ms))
	for i := range ms {
		ep, err := s.endpoint(&ms[i])
		if err != nil {
			return nil, err
		}
		out[i] = ep
	}
	return out, nil
}

// netToMsg converts a traced net to its wire form.
func netToMsg(n *core.Net) *NetMsg {
	msg := &NetMsg{Source: EndPointMsg{Pin: &PinMsg{Row: n.Source.Row, Col: n.Source.Col, Wire: int(n.Source.W)}}}
	for _, p := range n.PIPs {
		msg.Pips = append(msg.Pips, PipMsg{Row: p.Row, Col: p.Col, From: int(p.From), To: int(p.To)})
	}
	for _, sp := range n.Sinks {
		msg.Sinks = append(msg.Sinks, EndPointMsg{Pin: &PinMsg{Row: sp.Row, Col: sp.Col, Wire: int(sp.W)}})
	}
	return msg
}
