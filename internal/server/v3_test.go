package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/jbits"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/protocol"
	v3 "repro/internal/server/protocol/v3"
	"repro/internal/workload"
)

// TestV3Negotiation: a default client upgrades to binary framing through
// the JSON hello, the full session surface works over it, and the server's
// wire stats see a v3 connection moving v3 frames.
func TestV3Negotiation(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "dev")
	ctx := context.Background()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Binary() {
		t.Fatal("default client did not negotiate v3 against a default server")
	}
	if err := driveSession(t, addr, "dev"); err != nil {
		t.Fatalf("full surface over v3: %v", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w := stats.Wire
	if w == nil {
		t.Fatal("statsz has no wire section")
	}
	if w.ConnsV3 == 0 {
		t.Errorf("no v3 connections counted: %+v", w)
	}
	if w.FramesV3In == 0 || w.FramesV3Out == 0 || w.BytesV3In == 0 || w.BytesV3Out == 0 {
		t.Errorf("v3 traffic not counted: %+v", w)
	}
}

// TestV3OptOut: a client pinned to v2 stays on JSON framing, and a server
// with the capability disabled never upgrades anyone.
func TestV3OptOut(t *testing.T) {
	ctx := context.Background()

	addr, _ := startDaemon(t, server.Options{}, "dev")
	c, err := client.Dial(ctx, addr, client.WithBinary(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Binary() {
		t.Fatal("WithBinary(false) client negotiated v3 anyway")
	}
	s, err := c.Session(ctx, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Route(ctx, client.Pin(core.NewPin(5, 7, arch.S1YQ)),
		client.Pin(core.NewPin(6, 8, arch.S0F3))); err != nil {
		t.Fatalf("v2 session broken: %v", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Wire == nil || stats.Wire.ConnsV2 == 0 {
		t.Errorf("v2 connection not counted: %+v", stats.Wire)
	}

	addr2, _ := startDaemon(t, server.Options{DisableBinary: true}, "dev")
	c2, err := client.Dial(ctx, addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Binary() {
		t.Fatal("client negotiated v3 against a DisableBinary server")
	}
	if _, err := c2.Session(ctx, "dev"); err != nil {
		t.Fatalf("v2 fallback session: %v", err)
	}
}

// rawHelloV3 performs the JSON hello with the binv3 cap over a raw
// connection and leaves the stream in v3 framing.
func rawHelloV3(t *testing.T, conn net.Conn) {
	t.Helper()
	req := server.Request{ID: 1, Op: "hello",
		Hello: &server.HelloMsg{Version: protocol.Version, Caps: []string{protocol.CapBinV3}}}
	payload, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	if err := jbits.WriteFrame(conn, server.OpService, payload); err != nil {
		t.Fatal(err)
	}
	_, body, err := jbits.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("hello rejected: %s", resp.Err)
	}
}

// TestV3MalformedFilter: garbage after the v3 upgrade is rejected by the
// pre-parse filter with a typed malformed error before any dispatch, the
// statsz counter ticks, and the connection is closed (the stream is no
// longer frame-aligned).
func TestV3MalformedFilter(t *testing.T) {
	addr, _ := startDaemon(t, server.Options{}, "dev")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawHelloV3(t, conn)

	if _, err := conn.Write([]byte("this is not a v3 frame, not even close")); err != nil {
		t.Fatal(err)
	}
	var hdr [v3.HeaderSize]byte
	h, err := v3.ReadHeader(conn, &hdr)
	if err != nil {
		t.Fatalf("reading the malformed-error response: %v", err)
	}
	payload, err := v3.ReadPayloadInto(conn, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	if err := v3.DecodeResponse(h, payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ErrorCode != protocol.CodeMalformed {
		t.Fatalf("error code = %q, want %q (err: %s)", resp.ErrorCode, protocol.CodeMalformed, resp.Err)
	}
	// The server closes a desynced stream after the typed error.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("connection still open after a filtered frame")
	}

	// A decode-level failure (valid header, corrupt payload) also counts as
	// malformed but keeps the connection: framing is still trustworthy.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	rawHelloV3(t, conn2)
	frame := make([]byte, v3.HeaderSize+2)
	v3.PutHeader(frame, v3.Header{Op: v3.OpRoute, ID: 9, Len: 2})
	frame[v3.HeaderSize] = 0xFF
	frame[v3.HeaderSize+1] = 0xFF
	if _, err := conn2.Write(frame); err != nil {
		t.Fatal(err)
	}
	h2, err := v3.ReadHeader(conn2, &hdr)
	if err != nil {
		t.Fatal(err)
	}
	payload, err = v3.ReadPayloadInto(conn2, h2, payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp2 server.Response
	if err := v3.DecodeResponse(h2, payload, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.ErrorCode != protocol.CodeMalformed || resp2.ID != 9 {
		t.Fatalf("decode failure: code=%q id=%d", resp2.ErrorCode, resp2.ID)
	}
	// The connection survives: a well-formed request still answers.
	good, err := v3.AppendRequest(nil, &server.Request{ID: 10, Op: "devices"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write(good); err != nil {
		t.Fatal(err)
	}
	h3, err := v3.ReadHeader(conn2, &hdr)
	if err != nil {
		t.Fatalf("connection dead after recoverable decode error: %v", err)
	}
	payload, err = v3.ReadPayloadInto(conn2, h3, payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp3 server.Response
	if err := v3.DecodeResponse(h3, payload, &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.ID != 10 || len(resp3.Devices) != 1 {
		t.Fatalf("devices after decode error: %+v", resp3)
	}

	// Both events are on the malformed counter.
	c, err := client.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Wire == nil || stats.Wire.Malformed < 2 {
		t.Errorf("malformed counter = %+v, want >= 2", stats.Wire)
	}
}

// scriptSession drives one workload script over a live client session,
// returning the per-op outcome vector (true = op succeeded).
func scriptSession(ctx context.Context, s *client.Session, script []workload.ScriptOp, rows, cols int) ([]bool, error) {
	pins := func(ps []core.Pin) []server.EndPointMsg {
		out := make([]server.EndPointMsg, len(ps))
		for i, p := range ps {
			out[i] = client.Pin(p)
		}
		return out
	}
	regs := make(map[int]string)
	outcomes := make([]bool, 0, len(script))
	for i, op := range script {
		var err error
		switch op.Kind {
		case workload.OpRouteNet, workload.OpReroute, workload.OpRouteFanout:
			err = s.Route(ctx, client.Pin(op.Src), pins(op.Sinks)...)
		case workload.OpRouteBus:
			err = s.RouteBusBatch(ctx, pins(op.Srcs), pins(op.Dsts))
		case workload.OpUnroute:
			err = s.Unroute(ctx, client.Pin(op.Src))
		case workload.OpReverseUnroute:
			err = s.ReverseUnroute(ctx, client.Pin(op.Sinks[0]))
		case workload.OpCoreNew:
			name := fmt.Sprintf("reg_s%d_%d", op.Slot, op.Serial)
			row, col := workload.CoreSlotSite(op.Slot, rows, cols)
			err = s.NewCore(ctx, server.CoreMsg{Name: name, Kind: "register", Row: row, Col: col, Bits: 4})
			if err == nil {
				regs[op.Slot] = name
				err = s.Route(ctx, client.PortRef(name, "q", 0), client.Pin(op.Sinks[0]))
			}
		case workload.OpCoreReplace:
			name, ok := regs[op.Slot]
			if !ok {
				err = fmt.Errorf("no core at slot %d", op.Slot)
			} else {
				row, col := workload.CoreSlotSite(op.Slot, rows, cols)
				err = s.ReplaceCore(ctx, server.CoreMsg{Name: name, Row: row, Col: col})
			}
		default:
			return nil, fmt.Errorf("step %d: unknown op kind %v", i, op.Kind)
		}
		outcomes = append(outcomes, err == nil)
	}
	return outcomes, nil
}

// TestV2V3Differential is the byte-identity proof for the tentpole: the
// same workload script routed once over JSON v2 and once over binary v3
// (against two identical daemons) must agree on every op outcome and leave
// byte-identical board state — checked with bytes.Equal and, on failure,
// explained PIP-by-PIP with the bitstream oracle.
func TestV2V3Differential(t *testing.T) {
	const rows, cols = 16, 24
	script, err := workload.New(7, rows, cols).Script(workload.ScriptOptions{Steps: 120, CoreSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func(opt ...client.Option) ([]bool, []byte, *client.Session) {
		t.Helper()
		addr, _ := startDaemon(t, server.Options{}, "dev")
		c, err := client.Dial(ctx, addr, opt...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		s, err := c.Session(ctx, "dev")
		if err != nil {
			t.Fatal(err)
		}
		outcomes, err := scriptSession(ctx, s, script, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := s.Readback(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return outcomes, rb, s
	}

	o2, rb2, s2 := run(client.WithBinary(false))
	o3, rb3, s3 := run()

	for i := range script {
		if o2[i] != o3[i] {
			t.Fatalf("step %d (%s): v2 ok=%v, v3 ok=%v", i, script[i].Kind, o2[i], o3[i])
		}
	}
	if !bytes.Equal(rb2, rb3) {
		diff, derr := oracle.DiffStreams(arch.NewVirtex(), rb2, rb3)
		t.Fatalf("board state differs between v2 and v3 (%d bytes vs %d, %d PIPs differ, diff err %v)",
			len(rb2), len(rb3), len(diff), derr)
	}
	// Both client-side mirrors, advanced only by pushed partial frames,
	// must match the (identical) server state too.
	if err := s2.VerifyMirror(); err != nil {
		t.Errorf("v2 mirror: %v", err)
	}
	if err := s3.VerifyMirror(); err != nil {
		t.Errorf("v3 mirror: %v", err)
	}
}
