package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cores"
	"repro/internal/jbits"
	"repro/internal/server/protocol"
)

// streamPool recycles dirty-frame stream buffers. A worker takes a buffer
// when serializing a mutating op's frames and hands ownership to the
// response; the connection handler returns it once the frames are on the
// wire. Responses that never reach a handler (direct Submit callers,
// dropped on a canceled context) simply keep their buffer.
var streamPool sync.Pool

func takeStream() []byte {
	if p, _ := streamPool.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putStream(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	streamPool.Put(&b)
}

// task is one queued request plus its reply channel. Exactly one of req or
// fn is set: fn tasks run an arbitrary closure on the worker goroutine
// (health probes, failover restores) with exclusive access to the router.
type task struct {
	ctx  context.Context
	req  *Request
	fn   func(*core.Router, *jbits.Session) error
	resp chan *Response
}

// coreEntry tracks one named core instance living on a worker's device.
type coreEntry struct {
	c      cores.Core
	groups []string // port groups the replace flow reconnects
}

// WorkerConfig describes one device-backed routing worker.
type WorkerConfig struct {
	Name string
	Arch string // "" or "virtex", or "kestrel"
	Rows int
	Cols int
	Opts Options

	// ShipHook, when set, is called on the worker goroutine with every
	// mutating op's dirty-frame stream before the op is acknowledged —
	// fleet boards push it to their hardware over the XHWIF link here. An
	// error fails the op with CodeFailover and leaves the dirty set
	// intact, so nothing is acknowledged that the board did not accept.
	ShipHook func(stream []byte, frames int) error

	// JournalHook, when set, is called on the worker goroutine after each
	// acknowledged mutating op with the op and a snapshot of the live
	// connections — the fleet coordinator's failover journal.
	JournalHook func(req *Request, conns []core.ConnectionRecord)
}

// Worker wraps one named device: a JBits session, a JRoute router, named
// core instances, and the single goroutine that owns them all. Requests are
// serialized through the bounded queue; everything behind it is therefore
// single-threaded and needs no locks (metrics excepted). It serves both the
// daemon's static per-device sessions and the fleet's boards.
type Worker struct {
	cfg            WorkerConfig
	enqueueTimeout time.Duration

	queue chan task
	done  chan struct{} // closed when the worker has drained and exited

	js     *jbits.Session
	router *core.Router
	cores  map[string]*coreEntry
	m      *sessionMetrics
}

// NewWorker creates a worker and starts its goroutine.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	a, err := archByName(cfg.Arch)
	if err != nil {
		return nil, err
	}
	js, err := jbits.NewSession(a, cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	queueDepth := cfg.Opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	w := &Worker{
		cfg:            cfg,
		enqueueTimeout: cfg.Opts.enqueueTimeout(),
		queue:          make(chan task, queueDepth),
		done:           make(chan struct{}),
		js:             js,
		router: core.New(js.Dev,
			core.WithParallelism(cfg.Opts.Parallelism),
			core.WithRouteCache(cfg.Opts.RouteCache),
			core.WithParanoidVerify(cfg.Opts.ParanoidVerify),
			core.WithLibrary(cfg.Opts.Library)),
		cores: make(map[string]*coreEntry),
		m:     newSessionMetrics(),
	}
	// Seed the session counters with the router's construction-time stats
	// (library entries seeded or skipped) — op handlers only fold in
	// per-op deltas, which would never include them.
	w.m.addRouterDelta(w.router.Stats(), 0)
	go w.run()
	return w, nil
}

// Name returns the worker's device name.
func (w *Worker) Name() string { return w.cfg.Name }

// StatsSnapshot returns the worker's session counters.
func (w *Worker) StatsSnapshot() SessionStatsMsg { return w.m.snapshot(len(w.queue)) }

// Close closes the request queue. Callers must guarantee no Submit or Do is
// in flight or will follow (the daemon closes only after every connection
// handler has exited). Wait on Done for the drain to finish.
func (w *Worker) Close() { close(w.queue) }

// Done is closed when the worker goroutine has drained its queue and
// exited.
func (w *Worker) Done() <-chan struct{} { return w.done }

// archByName maps wire-level architecture names to constructors.
func archByName(name string) (*arch.Arch, error) {
	switch name {
	case "", "virtex":
		return arch.NewVirtex(), nil
	case "kestrel":
		return arch.NewKestrel(), nil
	default:
		return nil, fmt.Errorf("server: unknown architecture %q", name)
	}
}

// run is the worker loop: it owns the router and drains the queue until
// the queue is closed (shutdown), answering every remaining task. Tasks
// whose context died while they were queued are rejected with the typed
// cancellation code instead of executing late.
func (w *Worker) run() {
	defer close(w.done)
	for t := range w.queue {
		if t.ctx != nil && t.ctx.Err() != nil {
			t.resp <- ctxErrResponse(t.ctx, reqID(t.req))
			continue
		}
		if t.fn != nil {
			resp := &Response{}
			if err := t.fn(w.router, w.js); err != nil {
				resp.Err = err.Error()
				resp.ErrorCode = protocol.CodeInternal
			}
			t.resp <- resp
			continue
		}
		start := time.Now()
		resp := w.handle(t.req)
		w.m.observe(t.req.Op, time.Since(start), resp.Err != "")
		t.resp <- resp
	}
}

func reqID(req *Request) uint64 {
	if req == nil {
		return 0
	}
	return req.ID
}

// ctxErrResponse maps a dead context to its typed wire error.
func ctxErrResponse(ctx context.Context, id uint64) *Response {
	code := protocol.CodeCanceled
	msg := "server: request canceled while queued"
	if ctx.Err() == context.DeadlineExceeded {
		code = protocol.CodeDeadline
		msg = "server: request deadline expired while queued"
	}
	return &Response{ID: id, Err: msg, ErrorCode: code}
}

// Submit enqueues a request with backpressure. The wait for a queue slot is
// bounded by both the enqueue timeout (busy response, CodeBusy) and the
// request context (typed CodeCanceled / CodeDeadline response) — a caller
// with a deadline never waits past it, and a canceled caller's op is
// rejected rather than executed late.
func (w *Worker) Submit(ctx context.Context, req *Request) *Response {
	t := task{ctx: ctx, req: req, resp: make(chan *Response, 1)}
	timer := time.NewTimer(w.enqueueTimeout)
	defer timer.Stop()
	select {
	case w.queue <- t:
	case <-ctx.Done():
		return ctxErrResponse(ctx, req.ID)
	case <-timer.C:
		return &Response{ID: req.ID, Busy: true, ErrorCode: protocol.CodeBusy,
			Err: fmt.Sprintf("server: session %s queue full (backpressure)", w.cfg.Name)}
	}
	select {
	case resp := <-t.resp:
		resp.ID = req.ID
		return resp
	case <-ctx.Done():
		// The worker will see the dead context and skip the op (or has
		// already executed it; its buffered response is dropped).
		return ctxErrResponse(ctx, req.ID)
	}
}

// Do runs fn on the worker goroutine with exclusive access to the router
// and JBits session, under the same queue (and therefore the same
// serialization and backpressure) as requests. Fleet health probes and
// failover restores run through here.
func (w *Worker) Do(ctx context.Context, fn func(r *core.Router, js *jbits.Session) error) error {
	t := task{ctx: ctx, fn: fn, resp: make(chan *Response, 1)}
	timer := time.NewTimer(w.enqueueTimeout)
	defer timer.Stop()
	select {
	case w.queue <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return fmt.Errorf("server: session %s queue full (backpressure)", w.cfg.Name)
	}
	select {
	case resp := <-t.resp:
		if resp.Err != "" {
			return fmt.Errorf("%s", resp.Err)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// mutating reports whether an op changes device configuration and must
// therefore ship dirty frames back.
func mutating(op string) bool {
	switch op {
	case "route", "bus", "bus_batch", "batch", "unroute", "reverse_unroute",
		"core_new", "core_replace":
		return true
	}
	return false
}

// handle executes one request on the worker goroutine.
func (w *Worker) handle(req *Request) *Response {
	resp := &Response{ID: req.ID}
	before := w.router.Stats()
	err := w.dispatch(req, resp)
	if err != nil {
		resp.Err = err.Error()
		if resp.ErrorCode == "" {
			resp.ErrorCode = protocol.CodeRoute
		}
	}
	after := w.router.Stats()
	w.m.addRouterDelta(after.Sub(before), w.router.ConnectionCount())
	if err == nil && mutating(req.Op) {
		if ferr := w.shipDirty(resp); ferr != nil {
			resp.Err = ferr.Error()
		} else if w.cfg.JournalHook != nil {
			w.cfg.JournalHook(req, w.router.SnapshotConnections())
		}
	}
	return resp
}

// shipDirty serializes the frames dirtied by the op just executed into the
// response and resets the dirty set — the partial-reconfiguration push that
// keeps thin client mirrors in sync. With a ShipHook (fleet mode) the same
// stream must first be accepted by the board hardware; a push failure fails
// the op with CodeFailover and keeps the dirty set, so the journal never
// records state the board does not hold.
func (w *Worker) shipDirty(resp *Response) error {
	n := w.js.Dev.DirtyFrameCount()
	stream, err := w.js.Dev.AppendPartialConfig(takeStream())
	if err != nil {
		resp.ErrorCode = protocol.CodeInternal
		return fmt.Errorf("server: serializing dirty frames: %w", err)
	}
	if w.cfg.ShipHook != nil {
		if err := w.cfg.ShipHook(stream, n); err != nil {
			resp.ErrorCode = protocol.CodeFailover
			return fmt.Errorf("server: board link for %s: %w", w.cfg.Name, err)
		}
	}
	w.js.Dev.ClearDirty()
	resp.Frames = stream
	resp.FrameN = n
	w.m.addShipped(n, len(stream))
	return nil
}

func (w *Worker) dispatch(req *Request, resp *Response) error {
	switch req.Op {
	case "connect":
		stream, err := w.js.Dev.FullConfig()
		if err != nil {
			resp.ErrorCode = protocol.CodeInternal
			return err
		}
		resp.Rows, resp.Cols, resp.Arch, resp.Config = w.cfg.Rows, w.cfg.Cols, w.archName(), stream
		return nil

	case "readback":
		stream, err := w.js.Dev.FullConfig()
		if err != nil {
			resp.ErrorCode = protocol.CodeInternal
			return err
		}
		resp.Config = stream
		return nil

	case "route":
		src, err := w.endpoint(req.Source)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		sinks, err := w.endpoints(req.Sinks)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		switch len(sinks) {
		case 0:
			resp.ErrorCode = protocol.CodeBadRequest
			return fmt.Errorf("server: route with no sinks")
		case 1:
			return w.router.RouteNet(src, sinks[0])
		default:
			return w.router.RouteFanout(src, sinks)
		}

	case "bus", "bus_batch":
		srcs, err := w.endpoints(req.Sources)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		sinks, err := w.endpoints(req.Sinks)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		if req.Op == "bus" {
			return w.router.RouteBus(srcs, sinks)
		}
		return w.router.RouteBusBatch(srcs, sinks)

	case "batch":
		nets := make([]core.BatchNet, len(req.Nets))
		for i, n := range req.Nets {
			src, err := w.endpoint(&n.Source)
			if err != nil {
				resp.ErrorCode = protocol.CodeBadRequest
				return err
			}
			sinks, err := w.endpoints(n.Sinks)
			if err != nil {
				resp.ErrorCode = protocol.CodeBadRequest
				return err
			}
			nets[i] = core.BatchNet{Source: src, Sinks: sinks}
		}
		return w.router.RouteBatch(nets)

	case "unroute":
		src, err := w.endpoint(req.Source)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		return w.router.Unroute(src)

	case "reverse_unroute":
		sink, err := w.endpoint(req.Source)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		return w.router.ReverseUnroute(sink)

	case "trace", "reverse_trace":
		ep, err := w.endpoint(req.Source)
		if err != nil {
			resp.ErrorCode = protocol.CodeBadRequest
			return err
		}
		var net *core.Net
		if req.Op == "trace" {
			net, err = w.router.Trace(ep)
		} else {
			net, err = w.router.ReverseTrace(ep)
		}
		if err != nil {
			return err
		}
		resp.Net = netToMsg(net)
		return nil

	case "core_new":
		return w.coreNew(req.Core, resp)

	case "core_replace":
		return w.coreReplace(req.Core, resp)

	default:
		resp.ErrorCode = protocol.CodeUnknownOp
		return fmt.Errorf("server: unknown op %q", req.Op)
	}
}

func (w *Worker) archName() string {
	if w.cfg.Arch == "" {
		return "virtex"
	}
	return w.cfg.Arch
}

func (w *Worker) coreNew(msg *CoreMsg, resp *Response) error {
	if msg == nil {
		resp.ErrorCode = protocol.CodeBadRequest
		return fmt.Errorf("server: core_new without core description")
	}
	if _, dup := w.cores[msg.Name]; dup {
		resp.ErrorCode = protocol.CodeBadRequest
		return fmt.Errorf("server: core %q already exists", msg.Name)
	}
	c, groups, err := makeCore(msg)
	if err != nil {
		resp.ErrorCode = protocol.CodeBadRequest
		return err
	}
	if err := c.Place(msg.Row, msg.Col); err != nil {
		return err
	}
	if err := c.Implement(w.router); err != nil {
		return err
	}
	w.cores[msg.Name] = &coreEntry{c: c, groups: groups}
	return nil
}

func (w *Worker) coreReplace(msg *CoreMsg, resp *Response) error {
	if msg == nil {
		resp.ErrorCode = protocol.CodeBadRequest
		return fmt.Errorf("server: core_replace without core description")
	}
	entry, ok := w.cores[msg.Name]
	if !ok {
		resp.ErrorCode = protocol.CodeBadRequest
		return fmt.Errorf("server: no core %q", msg.Name)
	}
	var retune func() error
	if msg.K != nil {
		mul, ok := entry.c.(*cores.ConstMul)
		if !ok {
			resp.ErrorCode = protocol.CodeBadRequest
			return fmt.Errorf("server: core %q is not a constmul, cannot retune K", msg.Name)
		}
		retune = func() error { return mul.SetConstant(w.router, *msg.K) }
	}
	return cores.Replace(w.router, entry.c, msg.Row, msg.Col, entry.groups, retune)
}

// makeCore instantiates a library core from its wire description and
// returns it with the port groups the replace flow must reconnect.
func makeCore(msg *CoreMsg) (cores.Core, []string, error) {
	switch msg.Kind {
	case "constmul":
		k := uint64(0)
		if msg.K != nil {
			k = *msg.K
		}
		c, err := cores.NewConstMul(msg.Name, k, msg.KBits)
		if err != nil {
			return nil, nil, err
		}
		return c, []string{"x", "p"}, nil
	case "register":
		c, err := cores.NewRegister(msg.Name, msg.Bits)
		if err != nil {
			return nil, nil, err
		}
		return c, []string{"d", "q"}, nil
	case "counter":
		step := uint64(1)
		if msg.K != nil {
			step = *msg.K
		}
		c, err := cores.NewCounter(msg.Name, msg.Bits, step)
		if err != nil {
			return nil, nil, err
		}
		return c, []string{"q"}, nil
	default:
		return nil, nil, fmt.Errorf("server: unknown core kind %q", msg.Kind)
	}
}

// endpoint resolves a wire endpoint to a core.EndPoint: a raw pin, or a
// port of a named server-side core.
func (w *Worker) endpoint(m *EndPointMsg) (core.EndPoint, error) {
	if m == nil {
		return nil, fmt.Errorf("server: missing endpoint")
	}
	switch {
	case m.Pin != nil:
		if m.Pin.Wire < 0 || m.Pin.Wire >= w.js.Dev.A.WireCount() {
			return nil, fmt.Errorf("server: wire %d outside architecture", m.Pin.Wire)
		}
		return core.NewPin(m.Pin.Row, m.Pin.Col, arch.Wire(m.Pin.Wire)), nil
	case m.Port != nil:
		entry, ok := w.cores[m.Port.Core]
		if !ok {
			return nil, fmt.Errorf("server: no core %q", m.Port.Core)
		}
		ports := entry.c.Ports(m.Port.Group)
		if m.Port.Index < 0 || m.Port.Index >= len(ports) {
			return nil, fmt.Errorf("server: core %q group %q has no port %d",
				m.Port.Core, m.Port.Group, m.Port.Index)
		}
		return ports[m.Port.Index], nil
	default:
		return nil, fmt.Errorf("server: endpoint is neither pin nor port")
	}
}

func (w *Worker) endpoints(ms []EndPointMsg) ([]core.EndPoint, error) {
	out := make([]core.EndPoint, len(ms))
	for i := range ms {
		ep, err := w.endpoint(&ms[i])
		if err != nil {
			return nil, err
		}
		out[i] = ep
	}
	return out, nil
}

// netToMsg converts a traced net to its wire form.
func netToMsg(n *core.Net) *NetMsg {
	msg := &NetMsg{Source: EndPointMsg{Pin: &PinMsg{Row: n.Source.Row, Col: n.Source.Col, Wire: int(n.Source.W)}}}
	for _, p := range n.PIPs {
		msg.Pips = append(msg.Pips, PipMsg{Row: p.Row, Col: p.Col, From: int(p.From), To: int(p.To)})
	}
	for _, sp := range n.Sinks {
		msg.Sinks = append(msg.Sinks, EndPointMsg{Pin: &PinMsg{Row: sp.Row, Col: sp.Col, Wire: int(sp.W)}})
	}
	return msg
}
