// Package sim functionally simulates a configured device: it evaluates LUTs
// over the routed nets, propagates combinational values to a fixpoint, and
// latches flip-flops on each clock step.
//
// The paper ran on real Virtex silicon; this simulator is the substitute
// that lets the examples (the §4 counter, the dataflow pipeline, the §3.3
// constant-multiplier swap) demonstrate end-to-end that JRoute's routes
// carry correct signals — and it is what a BoardScope-style debugger (§3.5)
// probes.
//
// Model:
//   - A CLB's X/Y outputs are its F/G LUT outputs; XQ/YQ are the registered
//     versions, updated on Step only if the slice's clock pin is driven (by
//     a routed global clock).
//   - A LUT input pin reads the value of the net driving it (the root of
//     its driver chain); undriven inputs read false.
//   - Output pins of unconfigured CLBs can be forced to act as virtual
//     input pads.
//   - Combinational loops (not broken by a flip-flop) are detected as a
//     failure to reach a fixpoint and reported as an error.
package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/device"
)

type cellKey struct {
	Row, Col, N int
}

// bramState is one block-RAM site during simulation.
type bramState struct {
	mem  [arch.BRAMWords]byte
	dout byte // registered read port
}

// Simulator evaluates one device.
type Simulator struct {
	dev    *device.Device
	forced map[device.Key]bool // virtual pads: out-pin tracks with forced values
	ff     map[cellKey]bool    // flip-flop state
	comb   map[cellKey]bool    // current F/G LUT outputs
	clbs   []device.Coord      // active CLBs, cached
	brams  map[device.Coord]*bramState
	cycles int
}

// New creates a simulator over the device's current configuration.
// Reconfiguring the device afterwards requires a Refresh.
func New(dev *device.Device) *Simulator {
	s := &Simulator{
		dev:    dev,
		forced: make(map[device.Key]bool),
		ff:     make(map[cellKey]bool),
		comb:   make(map[cellKey]bool),
	}
	s.Refresh()
	return s
}

// Refresh re-reads the device configuration (active CLBs and flip-flop
// initial values) and resets simulation state. Forced pads are kept.
func (s *Simulator) Refresh() {
	s.clbs = s.dev.ActiveCLBs()
	s.ff = make(map[cellKey]bool)
	s.comb = make(map[cellKey]bool)
	s.brams = make(map[device.Coord]*bramState)
	s.cycles = 0
	for _, c := range s.clbs {
		for n := 0; n < device.NumFFs; n++ {
			if s.dev.FFInit(c.Row, c.Col, n) {
				s.ff[cellKey{c.Row, c.Col, n}] = true
			}
		}
	}
	for _, c := range s.dev.ActiveBRAMs() {
		init, _ := s.dev.GetBRAMInit(c.Row, c.Col)
		s.brams[c] = &bramState{mem: init}
	}
}

// Cycles returns how many clock steps have been simulated since the last
// Refresh.
func (s *Simulator) Cycles() int { return s.cycles }

// Force drives a signal source with a constant: either an input pad
// (IOBIn, the §6 IOB extension) or an output pin of an *unconfigured* CLB
// acting as a virtual pad.
func (s *Simulator) Force(row, col int, w arch.Wire, v bool) error {
	switch s.dev.A.ClassOf(w).Kind {
	case arch.KindIOBIn:
		// pads are always forceable
	case arch.KindOutPin:
		if s.dev.CLBActive(row, col) {
			return fmt.Errorf("sim: CLB (%d,%d) has configured logic; cannot force its outputs", row, col)
		}
	default:
		return fmt.Errorf("sim: can only force input pads and CLB output pins, not %s", s.dev.A.WireName(w))
	}
	t, err := s.dev.Canon(row, col, w)
	if err != nil {
		return err
	}
	s.forced[t.Key()] = v
	return nil
}

// Release removes a forced value.
func (s *Simulator) Release(row, col int, w arch.Wire) error {
	t, err := s.dev.Canon(row, col, w)
	if err != nil {
		return err
	}
	delete(s.forced, t.Key())
	return nil
}

// lutIndexForFF maps a flip-flop index to the LUT whose output it registers
// (F -> XQ, G -> YQ in each slice); here the indices coincide.
func lutIndexForFF(ff int) int { return ff }

// outPinValue returns the current value of an output-pin track.
func (s *Simulator) outPinValue(t device.Track) bool {
	p := s.dev.A.ClassOf(t.W).Index
	// Pin order: S0X, S0Y, S0XQ, S0YQ, S1X, S1Y, S1XQ, S1YQ.
	slice := p / 4
	within := p % 4
	switch within {
	case 0: // X = F LUT
		if _, used := s.dev.GetLUT(t.Row, t.Col, slice*2+0); used {
			return s.comb[cellKey{t.Row, t.Col, slice*2 + 0}]
		}
	case 1: // Y = G LUT
		if _, used := s.dev.GetLUT(t.Row, t.Col, slice*2+1); used {
			return s.comb[cellKey{t.Row, t.Col, slice*2 + 1}]
		}
	case 2: // XQ = registered F LUT
		if _, used := s.dev.GetLUT(t.Row, t.Col, slice*2+0); used {
			return s.ff[cellKey{t.Row, t.Col, slice*2 + 0}]
		}
	case 3: // YQ = registered G LUT
		if _, used := s.dev.GetLUT(t.Row, t.Col, slice*2+1); used {
			return s.ff[cellKey{t.Row, t.Col, slice*2 + 1}]
		}
	}
	// Unconfigured pin: a virtual pad if forced, floating low otherwise.
	if v, ok := s.forced[t.Key()]; ok {
		return v
	}
	return false
}

// rootValue resolves the value carried by a track by walking its driver
// chain to the source.
func (s *Simulator) rootValue(t device.Track) bool {
	for hops := 0; ; hops++ {
		if hops > 4096 {
			// Defensive: driver chains are acyclic by construction
			// (a track has one driver and PIPs cannot form a loop
			// without contention), but guard anyway.
			return false
		}
		p, ok := s.dev.DriverOf(t)
		if !ok {
			break
		}
		t, ok = s.dev.CanonOK(p.Row, p.Col, p.From)
		if !ok {
			return false
		}
	}
	switch s.dev.A.ClassOf(t.W).Kind {
	case arch.KindOutPin:
		return s.outPinValue(t)
	case arch.KindIOBIn:
		return s.forced[t.Key()]
	case arch.KindBRAMOut:
		if b, ok := s.brams[device.Coord{Row: t.Row, Col: t.Col}]; ok {
			j := s.dev.A.ClassOf(t.W).Index
			return b.dout>>j&1 != 0
		}
		return false
	case arch.KindGClk:
		// Between steps the clock is low; edges are implicit in Step.
		return false
	default:
		if v, ok := s.forced[t.Key()]; ok {
			return v
		}
		return false
	}
}

// lutInputValue reads LUT n's input idx (0..3) at a CLB.
func (s *Simulator) lutInputValue(row, col, n, idx int) bool {
	w := arch.Input(n*4 + idx)
	t, ok := s.dev.CanonOK(row, col, w)
	if !ok {
		return false
	}
	return s.rootValue(t)
}

func (s *Simulator) evalLUT(row, col, n int) bool {
	truth, used := s.dev.GetLUT(row, col, n)
	if !used {
		return false
	}
	idx := 0
	for i := 0; i < 4; i++ {
		if s.lutInputValue(row, col, n, i) {
			idx |= 1 << i
		}
	}
	return truth&(1<<idx) != 0
}

// Eval propagates combinational values to a fixpoint. It fails if the
// configuration contains a combinational loop.
func (s *Simulator) Eval() error {
	maxIters := 4*len(s.clbs) + 2
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for _, c := range s.clbs {
			for n := 0; n < device.NumLUTs; n++ {
				if _, used := s.dev.GetLUT(c.Row, c.Col, n); !used {
					continue
				}
				v := s.evalLUT(c.Row, c.Col, n)
				k := cellKey{c.Row, c.Col, n}
				if s.comb[k] != v {
					s.comb[k] = v
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: combinational loop: no fixpoint after %d sweeps", maxIters)
}

// Step advances one clock cycle: evaluate combinational logic, latch every
// flip-flop whose slice clock is driven, then re-evaluate so that Value
// reflects the post-edge state.
func (s *Simulator) Step() error {
	if err := s.Eval(); err != nil {
		return err
	}
	next := make(map[cellKey]bool, len(s.ff))
	for k, v := range s.ff {
		next[k] = v
	}
	for _, c := range s.clbs {
		for ffn := 0; ffn < device.NumFFs; ffn++ {
			slice := ffn / 2
			clkPin := arch.S0CLK
			if slice == 1 {
				clkPin = arch.S1CLK
			}
			if !s.dev.IsOn(c.Row, c.Col, clkPin) {
				continue // unclocked flip-flops hold
			}
			lut := lutIndexForFF(ffn)
			if _, used := s.dev.GetLUT(c.Row, c.Col, lut); !used {
				continue
			}
			next[cellKey{c.Row, c.Col, ffn}] = s.comb[cellKey{c.Row, c.Col, lut}]
		}
	}
	// Block RAMs clock synchronously with the CLB flip-flops when their
	// clock pin is driven: write-enable commits din to mem[addr], and the
	// registered read port loads the (post-write) word at addr.
	for c, b := range s.brams {
		clk, ok := s.dev.CanonOK(c.Row, c.Col, arch.BRAMClk())
		if !ok {
			continue
		}
		if _, driven := s.dev.DriverOf(clk); !driven {
			continue
		}
		addr := 0
		for i := 0; i < arch.NumBRAMAddr; i++ {
			if s.pinValue(c, arch.BRAMAddr(i)) {
				addr |= 1 << i
			}
		}
		if s.pinValue(c, arch.BRAMWE()) {
			var din byte
			for i := 0; i < arch.NumBRAMDin; i++ {
				if s.pinValue(c, arch.BRAMDin(i)) {
					din |= 1 << i
				}
			}
			b.mem[addr] = din
		}
		b.dout = b.mem[addr]
	}
	s.ff = next
	s.cycles++
	return s.Eval()
}

// pinValue reads the routed value on a named pin of a tile.
func (s *Simulator) pinValue(c device.Coord, w arch.Wire) bool {
	t, ok := s.dev.CanonOK(c.Row, c.Col, w)
	if !ok {
		return false
	}
	return s.rootValue(t)
}

// BRAMWord reads a simulated block-RAM word directly (debug aid).
func (s *Simulator) BRAMWord(row, col, addr int) (byte, bool) {
	b, ok := s.brams[device.Coord{Row: row, Col: col}]
	if !ok || addr < 0 || addr >= arch.BRAMWords {
		return 0, false
	}
	return b.mem[addr], true
}

// Run advances n clock cycles.
func (s *Simulator) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("sim: cycle %d: %w", s.cycles, err)
		}
	}
	return nil
}

// Value reads the current logic value on any wire reference.
func (s *Simulator) Value(row, col int, w arch.Wire) (bool, error) {
	t, err := s.dev.Canon(row, col, w)
	if err != nil {
		return false, err
	}
	if s.dev.A.ClassOf(t.W).Kind == arch.KindOutPin {
		return s.outPinValue(t), nil
	}
	return s.rootValue(t), nil
}

// FF reads a flip-flop's state directly.
func (s *Simulator) FF(row, col, n int) bool { return s.ff[cellKey{row, col, n}] }

// SetFF forces a flip-flop's state (debug aid, mirroring BoardScope's state
// injection).
func (s *Simulator) SetFF(row, col, n int, v bool) { s.ff[cellKey{row, col, n}] = v }

// Probe names a wire to read.
type Probe struct {
	Row, Col int
	W        arch.Wire
}

// ReadWord interprets an ordered list of probes as a little-endian word —
// convenient for checking counters and datapaths (probe 0 is bit 0).
func (s *Simulator) ReadWord(pins []Probe) (uint64, error) {
	var v uint64
	for i, p := range pins {
		b, err := s.Value(p.Row, p.Col, p.W)
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << i
		}
	}
	return v, nil
}
