package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
)

// Truth tables for 4-input LUTs where only F1 (bit 0) matters.
const (
	lutBuf uint16 = 0xAAAA // out = F1
	lutNot uint16 = 0x5555 // out = !F1
	lutXor uint16 = 0x6666 // out = F1 ^ F2
	lutAnd uint16 = 0x8888 // out = F1 & F2
)

func newSim(t *testing.T) (*device.Device, *core.Router) {
	t.Helper()
	d, err := device.New(arch.NewVirtex(), 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	return d, core.New(d)
}

// TestForcedPad checks the virtual-pad mechanism and net value resolution.
func TestForcedPad(t *testing.T) {
	d, r := newSim(t)
	// Pad at (2,2).S0X routed to a LUT input at (4,6).
	if err := r.RouteNet(core.NewPin(2, 2, arch.S0X), core.NewPin(4, 6, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	if v, _ := s.Value(4, 6, arch.S0F1); v {
		t.Error("input high before forcing")
	}
	if err := s.Force(2, 2, arch.S0X, true); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value(4, 6, arch.S0F1); !v {
		t.Error("forced value did not propagate along the net")
	}
	if err := s.Release(2, 2, arch.S0X); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value(4, 6, arch.S0F1); v {
		t.Error("value stuck after release")
	}
	// Forcing non-output pins or active CLBs is rejected.
	if err := s.Force(2, 2, arch.S0F1, true); err == nil {
		t.Error("forced an input pin")
	}
	d.SetLUT(3, 3, device.LUTS0F, lutBuf)
	s.Refresh()
	if err := s.Force(3, 3, arch.S0X, true); err == nil {
		t.Error("forced an active CLB output")
	}
}

// TestInverterChain: pad -> NOT -> NOT -> observable; combinational
// propagation through routed nets and two LUTs.
func TestInverterChain(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(5, 8, device.LUTS0F, lutNot)  // X = !F1
	d.SetLUT(5, 12, device.LUTS0F, lutNot) // X = !F1
	if err := r.RouteNet(core.NewPin(5, 4, arch.S0X), core.NewPin(5, 8, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	if err := r.RouteNet(core.NewPin(5, 8, arch.S0X), core.NewPin(5, 12, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	for _, in := range []bool{false, true, false} {
		if err := s.Force(5, 4, arch.S0X, in); err != nil {
			t.Fatal(err)
		}
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		mid, _ := s.Value(5, 8, arch.S0X)
		out, _ := s.Value(5, 12, arch.S0X)
		if mid != !in || out != in {
			t.Errorf("in=%v: mid=%v out=%v", in, mid, out)
		}
	}
}

// TestXorAndGates exercises 2-input truth tables with two routed nets into
// one LUT.
func TestXorAndGates(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(6, 10, device.LUTS0F, lutXor) // F1 ^ F2
	d.SetLUT(6, 10, device.LUTS0G, lutAnd) // G1 & G2
	for _, c := range []struct {
		src  core.Pin
		sink core.Pin
	}{
		{core.NewPin(6, 6, arch.S0X), core.NewPin(6, 10, arch.S0F1)},
		{core.NewPin(6, 6, arch.S0Y), core.NewPin(6, 10, arch.S0F2)},
		{core.NewPin(6, 6, arch.S0X), core.NewPin(6, 10, arch.S0G1)},
		{core.NewPin(6, 6, arch.S0Y), core.NewPin(6, 10, arch.S0G2)},
	} {
		if err := r.RouteNet(c.src, c.sink); err != nil {
			t.Fatal(err)
		}
	}
	s := New(d)
	for _, c := range []struct{ a, b bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		s.Force(6, 6, arch.S0X, c.a)
		s.Force(6, 6, arch.S0Y, c.b)
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		xor, _ := s.Value(6, 10, arch.S0X)
		and, _ := s.Value(6, 10, arch.S0Y)
		if xor != (c.a != c.b) || and != (c.a && c.b) {
			t.Errorf("a=%v b=%v: xor=%v and=%v", c.a, c.b, xor, and)
		}
	}
}

// TestIOBPadToPad drives a real input pad through an inverter LUT to an
// output pad — the §6 IOB extension end to end.
func TestIOBPadToPad(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(8, 12, device.LUTS0F, lutNot)
	if err := r.RouteNet(core.NewPin(8, 0, arch.IOBIn(0)), core.NewPin(8, 12, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	if err := r.RouteNet(core.NewPin(8, 12, arch.S0X), core.NewPin(8, 23, arch.IOBOut(0))); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	for _, in := range []bool{false, true, false, true} {
		if err := s.Force(8, 0, arch.IOBIn(0), in); err != nil {
			t.Fatal(err)
		}
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		out, err := s.Value(8, 23, arch.IOBOut(0))
		if err != nil {
			t.Fatal(err)
		}
		if out != !in {
			t.Errorf("pad in %v: pad out %v", in, out)
		}
	}
	// Forcing an output pad is rejected.
	if err := s.Force(8, 23, arch.IOBOut(0), true); err == nil {
		t.Error("forced an output pad")
	}
}

// TestToggleFlipFlop: a registered NOT of its own state divides the clock
// by two — the smallest sequential circuit.
func TestToggleFlipFlop(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(7, 7, device.LUTS0F, lutNot) // D = !F1
	// Feed XQ back to F1 and clock the slice.
	if err := r.RouteNet(core.NewPin(7, 7, arch.S0XQ), core.NewPin(7, 7, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	if err := r.RouteClock(0, core.NewPin(7, 7, arch.S0CLK)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	want := false
	for cyc := 0; cyc < 6; cyc++ {
		if got := s.FF(7, 7, 0); got != want {
			t.Fatalf("cycle %d: FF = %v, want %v", cyc, got, want)
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		want = !want
	}
	if s.Cycles() != 6 {
		t.Errorf("Cycles = %d", s.Cycles())
	}
}

// TestUnclockedFFHolds: without a routed clock the flip-flop must hold.
func TestUnclockedFFHolds(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(7, 7, device.LUTS0F, lutNot)
	if err := r.RouteNet(core.NewPin(7, 7, arch.S0XQ), core.NewPin(7, 7, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.FF(7, 7, 0) {
		t.Error("unclocked FF changed state")
	}
}

// TestFFInit: initial values load from the configuration.
func TestFFInit(t *testing.T) {
	d, _ := newSim(t)
	d.SetLUT(3, 3, device.LUTS0F, lutBuf)
	d.SetFFInit(3, 3, device.FFS0XQ, true)
	s := New(d)
	if !s.FF(3, 3, device.FFS0XQ) {
		t.Error("FF init not loaded")
	}
	if v, _ := s.Value(3, 3, arch.S0XQ); !v {
		t.Error("XQ does not show init value")
	}
}

// TestCombinationalLoopDetected: an unregistered inverter feeding itself
// has no fixpoint.
func TestCombinationalLoopDetected(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(7, 7, device.LUTS0F, lutNot)
	if err := r.RouteNet(core.NewPin(7, 7, arch.S0X), core.NewPin(7, 7, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	if err := s.Eval(); err == nil {
		t.Error("combinational loop not detected")
	}
}

// TestStableLoopConverges: a buffer loop is degenerate but stable; the
// fixpoint iteration must converge.
func TestStableLoopConverges(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(7, 7, device.LUTS0F, lutBuf)
	if err := r.RouteNet(core.NewPin(7, 7, arch.S0X), core.NewPin(7, 7, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	if err := s.Eval(); err != nil {
		t.Errorf("stable loop reported as combinational loop: %v", err)
	}
}

func TestReadWordAndSetFF(t *testing.T) {
	d, _ := newSim(t)
	d.SetLUT(2, 2, device.LUTS0F, lutBuf)
	d.SetLUT(2, 3, device.LUTS0F, lutBuf)
	s := New(d)
	s.SetFF(2, 2, device.FFS0XQ, true)
	s.SetFF(2, 3, device.FFS0XQ, false)
	w, err := s.ReadWord([]Probe{
		{2, 2, arch.S0XQ},
		{2, 3, arch.S0XQ},
	})
	if err != nil || w != 1 {
		t.Errorf("ReadWord = %d, %v; want 1", w, err)
	}
	if _, err := s.ReadWord([]Probe{{99, 0, arch.S0X}}); err == nil {
		t.Error("bad probe accepted")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	d, r := newSim(t)
	d.SetLUT(7, 7, device.LUTS0F, lutNot)
	if err := r.RouteNet(core.NewPin(7, 7, arch.S0X), core.NewPin(7, 7, arch.S0F1)); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	if err := s.Run(3); err == nil {
		t.Error("Run ignored a combinational loop")
	}
}
