// Package timing provides a simple per-resource delay model for routed
// nets. JRoute's algorithms are deliberately *not* timing driven ("Because
// it is not timing driven, this algorithm is suitable only for non-critical
// nets", §3.1), so this model is used purely for measurement: the
// long-line ablation (experiment B8) reports estimated net delays with and
// without long lines, and cores can report their critical sink.
//
// Delays are in nanoseconds, loosely shaped after Virtex-era data-book
// figures: what matters for the experiments is the ordering (pins cheap,
// singles cheap but numerous, hexes amortized over six tiles, longs flat
// across the chip).
package timing

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
)

// Model holds the per-hop delays by driven resource kind.
type Model struct {
	OutMux   float64
	Single   float64
	Hex      float64
	Long     float64
	Input    float64
	Feedback float64
	Direct   float64
	GClk     float64
}

// Default returns the standard model.
func Default() Model {
	return Model{
		OutMux:   0.4,
		Single:   1.2,
		Hex:      2.4, // spans 6 tiles: 0.4/tile vs the single's 1.2
		Long:     3.2, // buffered, flat across the chip
		Input:    0.6,
		Feedback: 0.3,
		Direct:   0.3,
		GClk:     0.1,
	}
}

// PIPDelay returns the delay contributed by one PIP, classified by the
// architecture.
func (m Model) PIPDelay(a *arch.Arch, p device.PIP) float64 {
	switch a.DriveTemplate(p.From, p.To) {
	case arch.TVOutMux:
		return m.OutMux
	case arch.TVNorth1, arch.TVEast1, arch.TVSouth1, arch.TVWest1:
		return m.Single
	case arch.TVNorth6, arch.TVEast6, arch.TVSouth6, arch.TVWest6:
		return m.Hex
	case arch.TVLongH, arch.TVLongV:
		return m.Long
	case arch.TVFeedback:
		return m.Feedback
	case arch.TVDirect:
		return m.Direct
	case arch.TVGClk:
		return m.GClk
	case arch.TVClbIn:
		return m.Input
	default:
		return m.Single
	}
}

// SinkDelay returns the source-to-sink delay of one routed sink by walking
// its driver chain.
func (m Model) SinkDelay(dev *device.Device, sink core.Pin) (float64, error) {
	cur, err := dev.Canon(sink.Row, sink.Col, sink.W)
	if err != nil {
		return 0, err
	}
	total := 0.0
	hops := 0
	for {
		p, ok := dev.DriverOf(cur)
		if !ok {
			break
		}
		total += m.PIPDelay(dev.A, p)
		hops++
		if hops > 4096 {
			return 0, fmt.Errorf("timing: driver chain too long at %v", sink)
		}
		cur, err = dev.Canon(p.Row, p.Col, p.From)
		if err != nil {
			return 0, err
		}
	}
	if hops == 0 {
		return 0, fmt.Errorf("timing: %s at (%d,%d) is not routed",
			dev.A.WireName(sink.W), sink.Row, sink.Col)
	}
	return total, nil
}

// NetDelays returns the per-sink delays of a traced net.
func (m Model) NetDelays(dev *device.Device, net *core.Net) (map[core.Pin]float64, error) {
	out := make(map[core.Pin]float64, len(net.Sinks))
	for _, s := range net.Sinks {
		d, err := m.SinkDelay(dev, s)
		if err != nil {
			return nil, err
		}
		out[s] = d
	}
	return out, nil
}

// Skew returns the spread between the slowest and fastest sink of a net —
// the figure the dedicated global nets minimize ("distribute high-fanout
// signals with minimal skew", §2) and that §6 lists as future work for
// general routing.
func (m Model) Skew(dev *device.Device, net *core.Net) (float64, error) {
	if len(net.Sinks) == 0 {
		return 0, fmt.Errorf("timing: net has no sinks")
	}
	delays, err := m.NetDelays(dev, net)
	if err != nil {
		return 0, err
	}
	lo, hi := -1.0, -1.0
	for _, s := range net.Sinks {
		d := delays[s]
		if lo < 0 || d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo, nil
}

// Critical returns the slowest sink of a net and its delay.
func (m Model) Critical(dev *device.Device, net *core.Net) (core.Pin, float64, error) {
	if len(net.Sinks) == 0 {
		return core.Pin{}, 0, fmt.Errorf("timing: net has no sinks")
	}
	delays, err := m.NetDelays(dev, net)
	if err != nil {
		return core.Pin{}, 0, err
	}
	var worst core.Pin
	worstD := -1.0
	for _, s := range net.Sinks {
		if d := delays[s]; d > worstD {
			worst, worstD = s, d
		}
	}
	return worst, worstD, nil
}
