package timing

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
)

func rig(t *testing.T) *core.Router {
	t.Helper()
	d, err := device.New(arch.NewVirtex(), 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(d)
}

func TestSinkDelayPaperExample(t *testing.T) {
	r := rig(t)
	a := r.Dev.A
	// The §3.1 route: outmux + 2 singles + input.
	for _, p := range []device.PIP{
		{Row: 5, Col: 7, From: arch.S1YQ, To: arch.Out(1)},
		{Row: 5, Col: 7, From: arch.Out(1), To: a.Single(arch.East, 5)},
		{Row: 5, Col: 8, From: a.Single(arch.West, 5), To: a.Single(arch.North, 0)},
		{Row: 6, Col: 8, From: a.Single(arch.South, 0), To: arch.S0F3},
	} {
		if err := r.Route(p.Row, p.Col, p.From, p.To); err != nil {
			t.Fatal(err)
		}
	}
	m := Default()
	d, err := m.SinkDelay(r.Dev, core.NewPin(6, 8, arch.S0F3))
	if err != nil {
		t.Fatal(err)
	}
	want := m.OutMux + 2*m.Single + m.Input
	if diff := d - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("delay = %v, want %v", d, want)
	}
	if _, err := m.SinkDelay(r.Dev, core.NewPin(1, 1, arch.S0F1)); err == nil {
		t.Error("unrouted sink accepted")
	}
}

func TestHexFasterThanSinglesOverDistance(t *testing.T) {
	m := Default()
	// Six tiles by hex: one hex hop. By singles: six hops.
	if m.Hex >= 6*m.Single {
		t.Errorf("hex (%v) not faster than six singles (%v)", m.Hex, 6*m.Single)
	}
	if m.Long >= 3*m.Hex {
		t.Errorf("long (%v) not faster than three hexes (%v)", m.Long, 3*m.Hex)
	}
}

func TestNetDelaysAndCritical(t *testing.T) {
	r := rig(t)
	src := core.NewPin(5, 5, arch.S0X)
	near := core.NewPin(5, 7, arch.S0F1)
	far := core.NewPin(12, 20, arch.S1G2)
	if err := r.RouteFanout(src, []core.EndPoint{near, far}); err != nil {
		t.Fatal(err)
	}
	net, err := r.Trace(src)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	delays, err := m.NetDelays(r.Dev, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 2 {
		t.Fatalf("delays = %v", delays)
	}
	if delays[far] <= delays[near] {
		t.Errorf("far sink (%v) not slower than near sink (%v)", delays[far], delays[near])
	}
	crit, d, err := m.Critical(r.Dev, net)
	if err != nil {
		t.Fatal(err)
	}
	if crit != far || d != delays[far] {
		t.Errorf("critical = %v (%v)", crit, d)
	}
	if _, _, err := m.Critical(r.Dev, &core.Net{}); err == nil {
		t.Error("empty net accepted")
	}
}

func TestSkew(t *testing.T) {
	r := rig(t)
	src := core.NewPin(5, 5, arch.S0X)
	near := core.NewPin(5, 7, arch.S0F1)
	far := core.NewPin(12, 20, arch.S1G2)
	if err := r.RouteFanout(src, []core.EndPoint{near, far}); err != nil {
		t.Fatal(err)
	}
	net, err := r.Trace(src)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	skew, err := m.Skew(r.Dev, net)
	if err != nil {
		t.Fatal(err)
	}
	delays, _ := m.NetDelays(r.Dev, net)
	want := delays[far] - delays[near]
	if want < 0 {
		want = -want
	}
	if diff := skew - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("skew = %v, want %v", skew, want)
	}
	if _, err := m.Skew(r.Dev, &core.Net{}); err == nil {
		t.Error("empty net accepted")
	}
	// A single-sink net has zero skew.
	r2 := rig(t)
	if err := r2.RouteNet(src, near); err != nil {
		t.Fatal(err)
	}
	n2, _ := r2.Trace(src)
	if s, err := m.Skew(r2.Dev, n2); err != nil || s != 0 {
		t.Errorf("single-sink skew = %v, %v", s, err)
	}
}

func TestPIPDelayKinds(t *testing.T) {
	r := rig(t)
	a := r.Dev.A
	m := Default()
	cases := []struct {
		p    device.PIP
		want float64
	}{
		{device.PIP{Row: 5, Col: 5, From: arch.S0X, To: arch.Out(0)}, m.OutMux},
		{device.PIP{Row: 5, Col: 5, From: arch.Out(0), To: a.Single(arch.East, 0)}, m.Single},
		{device.PIP{Row: 5, Col: 5, From: arch.Out(0), To: a.Hex(arch.North, 0)}, m.Hex},
		{device.PIP{Row: 6, Col: 6, From: arch.Out(0), To: a.LongH(0)}, m.Long},
		{device.PIP{Row: 5, Col: 5, From: a.Single(arch.West, 0), To: arch.S0F1}, m.Input},
		{device.PIP{Row: 5, Col: 5, From: arch.S0X, To: arch.S0F1}, m.Feedback},
		{device.PIP{Row: 5, Col: 5, From: arch.OutAlias(0), To: arch.S0F1}, m.Direct},
		{device.PIP{Row: 5, Col: 5, From: arch.GClk(0), To: arch.S0CLK}, m.GClk},
	}
	for _, c := range cases {
		if got := m.PIPDelay(a, c.p); got != c.want {
			t.Errorf("PIPDelay(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
