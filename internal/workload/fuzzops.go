package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
)

// Script generation: seeded random op sequences for the differential
// verification harness (internal/oracle/fuzz). A script is pure data — the
// harness applies the same script to several router configurations (cache
// on/off, parallelism 1/N) and requires identical outcomes, so the
// generator must be deterministic for a seed and must do its own liveness
// bookkeeping: ops mostly target endpoints in states where they succeed
// (fresh pins for routes, live nets for unroutes), because a script whose
// every op fails exercises nothing. A failing op is still a legal step —
// all configurations must fail it identically.

// ScriptOpKind enumerates the operations a script step can take.
type ScriptOpKind uint8

// Script op kinds.
const (
	// OpRouteNet routes Src to Sinks[0] (single sink).
	OpRouteNet ScriptOpKind = iota
	// OpRouteFanout routes Src to all of Sinks.
	OpRouteFanout
	// OpRouteBus routes Srcs[i] to Dsts[i] as one negotiated batch.
	OpRouteBus
	// OpUnroute removes the whole net sourced at Src.
	OpUnroute
	// OpReverseUnroute removes only the branch reaching Sinks[0].
	OpReverseUnroute
	// OpReroute routes a previously unrouted net again (Src to Sinks) —
	// the exact-cache replay path.
	OpReroute
	// OpCoreNew places and implements a register core at slot Slot and
	// routes its output port to Sinks[0].
	OpCoreNew
	// OpCoreReplace swaps the core at slot Slot for a fresh instance:
	// rip-up, re-implement, reconnect (§3.3).
	OpCoreReplace
	// OpNoCObstacle places a 1x1 obstacle over the NoC mesh node tile in
	// Rect — ripping the node, its links, and every net crossing the tile,
	// then detouring the survivors (cores.NoC.PlaceObstacle).
	OpNoCObstacle
	// OpNoCClear removes the obstacle in Rect, restoring the node, its
	// links, and the detoured nets (cores.NoC.RemoveObstacle).
	OpNoCClear
)

// String names the op kind.
func (k ScriptOpKind) String() string {
	switch k {
	case OpRouteNet:
		return "route"
	case OpRouteFanout:
		return "fanout"
	case OpRouteBus:
		return "bus"
	case OpUnroute:
		return "unroute"
	case OpReverseUnroute:
		return "reverse-unroute"
	case OpReroute:
		return "reroute"
	case OpCoreNew:
		return "core-new"
	case OpCoreReplace:
		return "core-replace"
	case OpNoCObstacle:
		return "noc-obstacle"
	case OpNoCClear:
		return "noc-clear"
	default:
		return "unknown"
	}
}

// Fixed mesh geometry NoC-enabled scripts assume (matching
// internal/noc.DefaultConfig): a 3x3 node grid, south-west node at tile
// (3,8), pitch 3, with each node's packet-injection tap one tile north.
// The generator reserves node and tap tiles against random endpoints, and
// obstacle ops target node tiles only, so a placement never swallows a
// script net's endpoint.
const (
	NoCMeshRows = 3
	NoCMeshCols = 3
	NoCBaseRow  = 3
	NoCBaseCol  = 8
	NoCPitch    = 3
)

// NoCNodeSite returns the tile of mesh node (i, j) in the fixed fuzz
// geometry.
func NoCNodeSite(i, j int) (row, col int) {
	return NoCBaseRow + i*NoCPitch, NoCBaseCol + j*NoCPitch
}

// nocConnectedWithout reports whether the fixed mesh's nodes minus the
// occluded set and minus one more candidate stay a single connected
// component — the generator-side mirror of the DyNoC placement check.
func nocConnectedWithout(occl map[[2]int]bool, minus [2]int) bool {
	live := func(i, j int) bool {
		return i >= 0 && i < NoCMeshRows && j >= 0 && j < NoCMeshCols &&
			!occl[[2]int{i, j}] && [2]int{i, j} != minus
	}
	var start [2]int
	found, total := false, 0
	for i := 0; i < NoCMeshRows; i++ {
		for j := 0; j < NoCMeshCols; j++ {
			if live(i, j) {
				if !found {
					start, found = [2]int{i, j}, true
				}
				total++
			}
		}
	}
	if total == 0 {
		return false
	}
	seen := map[[2]int]bool{start: true}
	queue := [][2]int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
			nx := [2]int{cur[0] + d[0], cur[1] + d[1]}
			if live(nx[0], nx[1]) && !seen[nx] {
				seen[nx] = true
				queue = append(queue, nx)
			}
		}
	}
	return len(seen) == total
}

// NoCChurn generates a seeded pure obstacle-churn script: only
// OpNoCObstacle / OpNoCClear steps against the fixed mesh geometry,
// targeting non-corner nodes only, so packet flows anchored at the four
// corners stay active through every event. Placements never overlap and
// always leave the live node graph connected. bench8 and jload's
// noc-smoke both drive this sequence.
func (g *Gen) NoCChurn(events int) []ScriptOp {
	occl := make(map[[2]int]bool)
	var active [][2]int
	var cands [][2]int
	for i := 0; i < NoCMeshRows; i++ {
		for j := 0; j < NoCMeshCols; j++ {
			corner := (i == 0 || i == NoCMeshRows-1) && (j == 0 || j == NoCMeshCols-1)
			if !corner {
				cands = append(cands, [2]int{i, j})
			}
		}
	}
	var ops []ScriptOp
	for len(ops) < events {
		var legal [][2]int
		for _, id := range cands {
			if !occl[id] && nocConnectedWithout(occl, id) {
				legal = append(legal, id)
			}
		}
		if len(active) > 0 && (len(legal) == 0 || g.Rng.Float64() < 0.45) {
			i := g.Rng.Intn(len(active))
			id := active[i]
			active = append(active[:i], active[i+1:]...)
			delete(occl, id)
			r, c := NoCNodeSite(id[0], id[1])
			ops = append(ops, ScriptOp{Serial: len(ops), Kind: OpNoCClear, Rect: [4]int{r, c, 1, 1}})
			continue
		}
		if len(legal) == 0 {
			break // unreachable on a 3x3 mesh; guards degenerate geometries
		}
		id := legal[g.Rng.Intn(len(legal))]
		occl[id] = true
		active = append(active, id)
		r, c := NoCNodeSite(id[0], id[1])
		ops = append(ops, ScriptOp{Serial: len(ops), Kind: OpNoCObstacle, Rect: [4]int{r, c, 1, 1}})
	}
	return ops
}

// ScriptOp is one step of a generated op sequence.
type ScriptOp struct {
	Serial int
	Kind   ScriptOpKind
	Src    core.Pin
	Sinks  []core.Pin
	Srcs   []core.Pin // bus sources, aligned with Dsts
	Dsts   []core.Pin // bus sinks
	Slot   int        // core slot for OpCoreNew / OpCoreReplace
	Rect   [4]int     // row, col, height, width for OpNoCObstacle / OpNoCClear
}

// ScriptOptions tune Script.
type ScriptOptions struct {
	Steps int
	// CoreSlots reserves this many single-tile register-core sites (see
	// CoreSlotSite); 0 disables core ops.
	CoreSlots int
	// PUnroute is the probability of an unroute-type step when at least
	// one net is live (default 0.35).
	PUnroute float64
	// MaxFanout bounds fanout sinks (default 3).
	MaxFanout int
	// MaxBusWidth bounds bus width (default 4).
	MaxBusWidth int
	// MaxLive caps concurrently live nets (default rows*cols/4): when the
	// cap is reached the generator forces unroute steps, holding the
	// board at a steady-state density so arbitrarily long scripts never
	// exhaust the endpoint pool.
	MaxLive int
	// NoC mixes in mesh obstacle place/clear ops against the fixed
	// NoCMesh* geometry. The generator keeps its own occlusion model and
	// emits only connectivity-preserving, non-overlapping placements —
	// the DyNoC precondition PlaceObstacle enforces.
	NoC bool
}

// CoreSlotSite returns the tile of reserved core slot i on a rows x cols
// array. Slots hold 1x1 register cores; the generator keeps random
// endpoints off these tiles so core placement and replacement never race
// script nets for logic pins. Both the generator and the harness executor
// derive sites from this single function.
func CoreSlotSite(slot, rows, cols int) (row, col int) {
	return rows - 2, 2 + 2*slot
}

// liveNet tracks one net the script has routed and not yet removed.
type liveNet struct {
	src   core.Pin
	sinks []core.Pin
}

// Script generates a seeded op sequence of the given shape. It fails only
// when endpoint selection exhausts the array (EndpointExhaustedError).
func (g *Gen) Script(o ScriptOptions) ([]ScriptOp, error) {
	if o.PUnroute == 0 {
		o.PUnroute = 0.35
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = 3
	}
	if o.MaxBusWidth == 0 {
		o.MaxBusWidth = 4
	}
	reserved := make(map[device.Coord]bool)
	for s := 0; s < o.CoreSlots; s++ {
		r, c := CoreSlotSite(s, g.Rows, g.Cols)
		if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
			return nil, fmt.Errorf("workload: core slot %d site (%d,%d) off the %dx%d array", s, r, c, g.Rows, g.Cols)
		}
		reserved[device.Coord{Row: r, Col: c}] = true
	}
	// nocOccl models which mesh nodes are currently under an obstacle; the
	// generator emits only placements that keep the remaining node graph
	// connected, mirroring the check PlaceObstacle itself enforces.
	nocOccl := make(map[[2]int]bool)
	var nocActive [][2]int // occluded nodes, placement order
	if o.NoC {
		topRow := NoCBaseRow + (NoCMeshRows-1)*NoCPitch + 1
		rightCol := NoCBaseCol + (NoCMeshCols-1)*NoCPitch
		if topRow >= g.Rows || rightCol >= g.Cols {
			return nil, fmt.Errorf("workload: NoC mesh does not fit the %dx%d array", g.Rows, g.Cols)
		}
		for i := 0; i < NoCMeshRows; i++ {
			for j := 0; j < NoCMeshCols; j++ {
				r, c := NoCNodeSite(i, j)
				reserved[device.Coord{Row: r, Col: c}] = true
				reserved[device.Coord{Row: r + 1, Col: c}] = true // inject tap
			}
		}
	}

	usedOut := make(map[core.Pin]bool)
	usedIn := make(map[core.Pin]bool)
	var live []liveNet
	var retired []liveNet
	coreLive := make([]bool, o.CoreSlots)

	// win constrains endpoint picks to a tile window; nil means the whole
	// array. Clustered-bus steps use a window so the batch exercises the
	// partitioned negotiator's region path, not just device-wide nets.
	type win struct{ r0, c0, r1, c1 int }
	pick := func(w *win) (int, int) {
		if w == nil {
			return g.Rng.Intn(g.Rows), g.Rng.Intn(g.Cols)
		}
		return w.r0 + g.Rng.Intn(w.r1-w.r0+1), w.c0 + g.Rng.Intn(w.c1-w.c0+1)
	}
	freshOutIn := func(w *win) (core.Pin, bool) {
		for i := 0; i < ChurnRetryLimit; i++ {
			r, c := pick(w)
			if reserved[device.Coord{Row: r, Col: c}] {
				continue
			}
			p := g.randOutPin(r, c)
			if !usedOut[p] {
				return p, true
			}
		}
		return core.Pin{}, false
	}
	freshOut := func() (core.Pin, bool) { return freshOutIn(nil) }
	freshInWin := func(avoid map[device.Coord]bool, w *win) (core.Pin, bool) {
		for i := 0; i < ChurnRetryLimit; i++ {
			r, c := pick(w)
			co := device.Coord{Row: r, Col: c}
			if reserved[co] || (avoid != nil && avoid[co]) {
				continue
			}
			p := g.randInPin(r, c)
			if !usedIn[p] {
				return p, true
			}
		}
		return core.Pin{}, false
	}
	freshIn := func(avoid map[device.Coord]bool) (core.Pin, bool) { return freshInWin(avoid, nil) }
	exhausted := func(step int) error {
		return &EndpointExhaustedError{Step: step, Attempts: ChurnRetryLimit}
	}

	commit := func(src core.Pin, sinks []core.Pin) {
		usedOut[src] = true
		for _, s := range sinks {
			usedIn[s] = true
		}
		live = append(live, liveNet{src: src, sinks: append([]core.Pin(nil), sinks...)})
	}
	release := func(n liveNet) {
		delete(usedOut, n.src)
		for _, s := range n.sinks {
			delete(usedIn, s)
		}
	}

	var ops []ScriptOp
	add := func(op ScriptOp) {
		op.Serial = len(ops)
		ops = append(ops, op)
	}

	if o.MaxLive == 0 {
		o.MaxLive = g.Rows * g.Cols / 4
	}

	for len(ops) < o.Steps {
		roll := g.Rng.Float64()
		if len(live) >= o.MaxLive {
			roll = 0 // force an unroute-type step at the density cap
		}
		switch {
		case roll < o.PUnroute && len(live) > 0:
			i := g.Rng.Intn(len(live))
			n := live[i]
			if len(n.sinks) > 1 && g.Rng.Intn(2) == 0 {
				// Drop one branch of a fanout net.
				j := g.Rng.Intn(len(n.sinks))
				sink := n.sinks[j]
				add(ScriptOp{Kind: OpReverseUnroute, Sinks: []core.Pin{sink}})
				delete(usedIn, sink)
				n.sinks = append(append([]core.Pin(nil), n.sinks[:j]...), n.sinks[j+1:]...)
				live[i] = n
				continue
			}
			add(ScriptOp{Kind: OpUnroute, Src: n.src})
			release(n)
			live = append(live[:i], live[i+1:]...)
			retired = append(retired, n)

		case roll < o.PUnroute+0.08 && len(retired) > 0:
			// Replay a previously torn-down net (exact-cache path) if its
			// endpoints are still free.
			i := g.Rng.Intn(len(retired))
			n := retired[i]
			free := !usedOut[n.src]
			for _, s := range n.sinks {
				free = free && !usedIn[s]
			}
			retired = append(retired[:i], retired[i+1:]...)
			if !free {
				continue
			}
			add(ScriptOp{Kind: OpReroute, Src: n.src, Sinks: append([]core.Pin(nil), n.sinks...)})
			commit(n.src, n.sinks)

		case o.NoC && roll > 1-0.16 && roll <= 1-0.06:
			// Mesh obstacle churn: clear an active obstacle or occlude a
			// fresh node, never disconnecting the generator's node-graph
			// model. A draw that finds no legal move emits nothing and the
			// loop rolls again — legality depends only on generator state,
			// so the emitted script succeeds identically on every config.
			if len(nocActive) > 0 && g.Rng.Intn(2) == 0 {
				i := g.Rng.Intn(len(nocActive))
				id := nocActive[i]
				nocActive = append(nocActive[:i], nocActive[i+1:]...)
				delete(nocOccl, id)
				r, c := NoCNodeSite(id[0], id[1])
				add(ScriptOp{Kind: OpNoCClear, Rect: [4]int{r, c, 1, 1}})
				continue
			}
			id := [2]int{g.Rng.Intn(NoCMeshRows), g.Rng.Intn(NoCMeshCols)}
			if nocOccl[id] || !nocConnectedWithout(nocOccl, id) {
				continue
			}
			nocOccl[id] = true
			nocActive = append(nocActive, id)
			r, c := NoCNodeSite(id[0], id[1])
			add(ScriptOp{Kind: OpNoCObstacle, Rect: [4]int{r, c, 1, 1}})

		case o.CoreSlots > 0 && roll > 1-0.06:
			slot := g.Rng.Intn(o.CoreSlots)
			if coreLive[slot] {
				add(ScriptOp{Kind: OpCoreReplace, Slot: slot})
				continue
			}
			sink, ok := freshIn(nil)
			if !ok {
				return nil, exhausted(len(ops))
			}
			add(ScriptOp{Kind: OpCoreNew, Slot: slot, Sinks: []core.Pin{sink}})
			usedIn[sink] = true
			coreLive[slot] = true

		default:
			shape := g.Rng.Float64()
			switch {
			case shape < 0.55: // single-sink net
				src, ok := freshOut()
				if !ok {
					return nil, exhausted(len(ops))
				}
				sink, ok := freshIn(map[device.Coord]bool{{Row: src.Row, Col: src.Col}: true})
				if !ok {
					return nil, exhausted(len(ops))
				}
				add(ScriptOp{Kind: OpRouteNet, Src: src, Sinks: []core.Pin{sink}})
				commit(src, []core.Pin{sink})
			case shape < 0.8: // fanout net
				src, ok := freshOut()
				if !ok {
					return nil, exhausted(len(ops))
				}
				k := 2 + g.Rng.Intn(o.MaxFanout-1)
				avoid := map[device.Coord]bool{{Row: src.Row, Col: src.Col}: true}
				var sinks []core.Pin
				for len(sinks) < k {
					s, ok := freshIn(avoid)
					if !ok {
						return nil, exhausted(len(ops))
					}
					avoid[device.Coord{Row: s.Row, Col: s.Col}] = true
					sinks = append(sinks, s)
					usedIn[s] = true // reserve against the next pick
				}
				for _, s := range sinks {
					delete(usedIn, s) // commit re-adds
				}
				add(ScriptOp{Kind: OpRouteFanout, Src: src, Sinks: sinks})
				commit(src, sinks)
			default: // bus, routed as one negotiated batch
				w := 2 + g.Rng.Intn(o.MaxBusWidth-1)
				// Half the buses are clustered into a tight window (when the
				// array has room) so the negotiated batch lands inside one
				// partition region; the rest stay device-wide and tend to
				// become partition-crossing nets. Window picks that exhaust
				// fall back to device-wide placement — determinism is
				// preserved because the fallback is part of the same seeded
				// draw sequence.
				var window *win
				const winH, winW = 8, 10
				if g.Rows > winH && g.Cols > winW && g.Rng.Intn(2) == 0 {
					r0 := g.Rng.Intn(g.Rows - winH)
					c0 := g.Rng.Intn(g.Cols - winW)
					window = &win{r0: r0, c0: c0, r1: r0 + winH - 1, c1: c0 + winW - 1}
				}
				var srcs, dsts []core.Pin
				ok := true
				for b := 0; b < w && ok; b++ {
					var src, dst core.Pin
					if src, ok = freshOutIn(window); !ok && window != nil {
						src, ok = freshOut()
					}
					if !ok {
						break
					}
					usedOut[src] = true
					avoid := map[device.Coord]bool{{Row: src.Row, Col: src.Col}: true}
					if dst, ok = freshInWin(avoid, window); !ok && window != nil {
						dst, ok = freshIn(avoid)
					}
					if !ok {
						break
					}
					usedIn[dst] = true
					srcs, dsts = append(srcs, src), append(dsts, dst)
				}
				for i := range srcs {
					delete(usedOut, srcs[i])
				}
				for i := range dsts {
					delete(usedIn, dsts[i])
				}
				if !ok {
					return nil, exhausted(len(ops))
				}
				add(ScriptOp{Kind: OpRouteBus, Srcs: srcs, Dsts: dsts})
				for i := range srcs {
					commit(srcs[i], []core.Pin{dsts[i]})
				}
			}
		}
	}
	return ops, nil
}
