package workload

import (
	"reflect"
	"testing"

	"repro/internal/device"
)

func TestScriptDeterministic(t *testing.T) {
	gen := func() []ScriptOp {
		g := New(99, 16, 24)
		ops, err := g.Script(ScriptOptions{Steps: 300, CoreSlots: 2})
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
}

func TestScriptShape(t *testing.T) {
	g := New(7, 16, 24)
	ops, err := g.Script(ScriptOptions{Steps: 500, CoreSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 500 {
		t.Fatalf("got %d ops, want 500", len(ops))
	}
	counts := make(map[ScriptOpKind]int)
	reserved := map[device.Coord]bool{}
	for s := 0; s < 2; s++ {
		r, c := CoreSlotSite(s, 16, 24)
		reserved[device.Coord{Row: r, Col: c}] = true
	}
	for i, op := range ops {
		if op.Serial != i {
			t.Fatalf("op %d has serial %d", i, op.Serial)
		}
		counts[op.Kind]++
		check := func(row, col int) {
			if reserved[device.Coord{Row: row, Col: col}] {
				t.Fatalf("op %d (%s) uses reserved core tile (%d,%d)", i, op.Kind, row, col)
			}
		}
		switch op.Kind {
		case OpRouteNet, OpRouteFanout, OpReroute:
			check(op.Src.Row, op.Src.Col)
			for _, s := range op.Sinks {
				check(s.Row, s.Col)
			}
		case OpRouteBus:
			for _, p := range op.Srcs {
				check(p.Row, p.Col)
			}
			for _, p := range op.Dsts {
				check(p.Row, p.Col)
			}
		}
	}
	// The mix must actually exercise every class it promises.
	for _, k := range []ScriptOpKind{OpRouteNet, OpRouteFanout, OpRouteBus, OpUnroute, OpReverseUnroute, OpReroute, OpCoreNew, OpCoreReplace} {
		if counts[k] == 0 {
			t.Fatalf("500-step script contains no %s ops: %v", k, counts)
		}
	}
}
