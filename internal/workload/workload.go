// Package workload generates the synthetic routing workloads behind the
// experiments: random point-to-point pairs at controlled Manhattan
// distances, fanout nets, buses, and RTR churn sequences. All generators
// are deterministic for a given seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
)

// Gen wraps a seeded source and the target device geometry.
type Gen struct {
	Rng  *rand.Rand
	Rows int
	Cols int
}

// New creates a generator for a device geometry.
func New(seed int64, rows, cols int) *Gen {
	return &Gen{Rng: rand.New(rand.NewSource(seed)), Rows: rows, Cols: cols}
}

// ForDevice creates a generator sized to a device.
func ForDevice(seed int64, dev *device.Device) *Gen {
	return New(seed, dev.Rows, dev.Cols)
}

// randOutPin picks a random CLB output at the tile.
func (g *Gen) randOutPin(row, col int) core.Pin {
	return core.NewPin(row, col, arch.OutPin(g.Rng.Intn(arch.NumOutPins)))
}

// randInPin picks a random LUT input at the tile.
func (g *Gen) randInPin(row, col int) core.Pin {
	return core.NewPin(row, col, arch.Input(g.Rng.Intn(arch.NumInputs)))
}

// Pair returns a random source output pin and sink input pin whose tiles
// are exactly dist apart in Manhattan distance (when the array permits;
// dist is clamped to the array diameter).
func (g *Gen) Pair(dist int) (src, sink core.Pin, err error) {
	maxDist := g.Rows - 1 + g.Cols - 1
	if dist < 0 {
		dist = 0
	}
	if dist > maxDist {
		return src, sink, fmt.Errorf("workload: distance %d exceeds array diameter %d", dist, maxDist)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		sr, sc := g.Rng.Intn(g.Rows), g.Rng.Intn(g.Cols)
		// Split the distance randomly between the axes.
		dr := g.Rng.Intn(dist + 1)
		dc := dist - dr
		if g.Rng.Intn(2) == 0 {
			dr = -dr
		}
		if g.Rng.Intn(2) == 0 {
			dc = -dc
		}
		tr, tc := sr+dr, sc+dc
		if tr < 0 || tr >= g.Rows || tc < 0 || tc >= g.Cols {
			continue
		}
		return g.randOutPin(sr, sc), g.randInPin(tr, tc), nil
	}
	return src, sink, fmt.Errorf("workload: no placement found for distance %d on %dx%d", dist, g.Rows, g.Cols)
}

// Fanout returns a source and k sink pins within the given radius of the
// source, on distinct tiles.
func (g *Gen) Fanout(k, radius int) (src core.Pin, sinks []core.EndPoint, err error) {
	if k < 1 {
		return src, nil, fmt.Errorf("workload: fanout %d", k)
	}
	sr := g.Rng.Intn(g.Rows)
	sc := g.Rng.Intn(g.Cols)
	src = g.randOutPin(sr, sc)
	used := map[device.Coord]bool{{Row: sr, Col: sc}: true}
	for len(sinks) < k {
		found := false
		for attempt := 0; attempt < 2000; attempt++ {
			tr := sr + g.Rng.Intn(2*radius+1) - radius
			tc := sc + g.Rng.Intn(2*radius+1) - radius
			if tr < 0 || tr >= g.Rows || tc < 0 || tc >= g.Cols {
				continue
			}
			c := device.Coord{Row: tr, Col: tc}
			if used[c] {
				continue
			}
			used[c] = true
			sinks = append(sinks, g.randInPin(tr, tc))
			found = true
			break
		}
		if !found {
			return src, nil, fmt.Errorf("workload: cannot place %d sinks in radius %d", k, radius)
		}
	}
	return src, sinks, nil
}

// Bus returns width-aligned source and sink endpoint slices spanning the
// given column distance: sources stacked vertically at one column, sinks at
// another — the dataflow-stage pattern of §3.1's bus call.
func (g *Gen) Bus(width, span int) (srcs, dsts []core.EndPoint, err error) {
	if width < 1 || width > g.Rows {
		return nil, nil, fmt.Errorf("workload: bus width %d on %d rows", width, g.Rows)
	}
	if span < 1 || span >= g.Cols {
		return nil, nil, fmt.Errorf("workload: bus span %d on %d cols", span, g.Cols)
	}
	baseRow := g.Rng.Intn(g.Rows - width + 1)
	srcCol := g.Rng.Intn(g.Cols - span)
	dstCol := srcCol + span
	for i := 0; i < width; i++ {
		srcs = append(srcs, g.randOutPin(baseRow+i, srcCol))
		dsts = append(dsts, g.randInPin(baseRow+i, dstCol))
	}
	return srcs, dsts, nil
}

// Crossbar returns width source and sink endpoint slices forming a
// permuted crossbar: sources stacked vertically at one column, sinks at a
// column span away, with the sink rows a random permutation of the source
// rows. Every net must cross every other's row band, so the pattern forces
// heavy track contention — the stress case for negotiated batch routing.
func (g *Gen) Crossbar(width, span int) (srcs, dsts []core.EndPoint, err error) {
	ps, pd, err := g.CrossbarPins(width, span)
	if err != nil {
		return nil, nil, err
	}
	for i := range ps {
		srcs = append(srcs, ps[i])
		dsts = append(dsts, pd[i])
	}
	return srcs, dsts, nil
}

// CrossbarPins is Crossbar with concrete pins instead of the EndPoint
// interface — the form remote clients need to serialize the workload.
func (g *Gen) CrossbarPins(width, span int) (srcs, dsts []core.Pin, err error) {
	if width < 1 || width > g.Rows {
		return nil, nil, fmt.Errorf("workload: crossbar width %d on %d rows", width, g.Rows)
	}
	if span < 1 || span >= g.Cols {
		return nil, nil, fmt.Errorf("workload: crossbar span %d on %d cols", span, g.Cols)
	}
	baseRow := g.Rng.Intn(g.Rows - width + 1)
	srcCol := g.Rng.Intn(g.Cols - span)
	dstCol := srcCol + span
	perm := g.Rng.Perm(width)
	for i := 0; i < width; i++ {
		srcs = append(srcs, g.randOutPin(baseRow+i, srcCol))
		dsts = append(dsts, g.randInPin(baseRow+perm[i], dstCol))
	}
	return srcs, dsts, nil
}

// Clustered returns nets grouped into spatially tight clusters laid out
// on a grid over the device — the workload shape that partition-parallel
// batch negotiation splits cleanly into independent regions. Each cluster
// holds per nets: rows of eight nets leave one tile's output pins for the
// input pins of a tile spread columns away, so nets within a cluster
// contend for the same corridor (forcing real negotiation rounds) while
// clusters stay far enough apart that their bounding boxes never touch.
func (g *Gen) Clustered(clusters, per, spread int) (srcs, dsts []core.EndPoint, err error) {
	ps, pd, err := g.ClusteredPins(clusters, per, spread)
	if err != nil {
		return nil, nil, err
	}
	for i := range ps {
		srcs = append(srcs, ps[i])
		dsts = append(dsts, pd[i])
	}
	return srcs, dsts, nil
}

// ClusteredPins is Clustered with concrete pins instead of the EndPoint
// interface — the form remote clients need to serialize the workload.
func (g *Gen) ClusteredPins(clusters, per, spread int) (srcs, dsts []core.Pin, err error) {
	if clusters < 1 || per < 1 {
		return nil, nil, fmt.Errorf("workload: clustered %dx%d", clusters, per)
	}
	if spread < 1 {
		return nil, nil, fmt.Errorf("workload: clustered spread %d", spread)
	}
	// Lay the clusters on a grid matching the device aspect ratio.
	gr := 1
	for gr*gr*g.Cols < clusters*g.Rows {
		gr++
	}
	if gr > clusters {
		gr = clusters
	}
	gc := (clusters + gr - 1) / gr
	cellH, cellW := g.Rows/gr, g.Cols/gc
	rowsNeeded := (per + 7) / 8
	if cellH < rowsNeeded+2 || cellW < spread+3 {
		return nil, nil, fmt.Errorf("workload: %d clusters of %d nets (spread %d) need %dx%d cells, have %dx%d on %dx%d",
			clusters, per, spread, rowsNeeded+2, spread+3, cellH, cellW, g.Rows, g.Cols)
	}
	for i := 0; i < clusters; i++ {
		r, c := i/gc, i%gc
		// Center the cluster in its cell with one tile of seeded jitter.
		cr := r*cellH + (cellH-rowsNeeded)/2
		cc := c*cellW + (cellW-spread)/2
		if j := g.Rng.Intn(3) - 1; cr+j >= r*cellH+1 && cr+j+rowsNeeded < (r+1)*cellH {
			cr += j
		}
		if j := g.Rng.Intn(3) - 1; cc+j >= c*cellW+1 && cc+j+spread < (c+1)*cellW {
			cc += j
		}
		for k := 0; k < per; k++ {
			row := cr + k/8
			srcs = append(srcs, core.NewPin(row, cc, arch.OutPin(k%8)))
			dsts = append(dsts, core.NewPin(row, cc+spread, arch.Input(k%arch.NumInputs)))
		}
	}
	return srcs, dsts, nil
}

// ChurnRetryLimit bounds how many placements a generator tries before
// concluding the array cannot host another fresh net.
const ChurnRetryLimit = 1000

// EndpointExhaustedError reports that a generator ran out of fresh
// endpoints: after Attempts placement attempts for step Step (at the
// requested distance/radius Dist), every candidate collided with a live
// net. Growing the array or shrinking the working set are the remedies.
type EndpointExhaustedError struct {
	Step     int // generator step or net index that failed
	Dist     int // requested Manhattan distance or radius
	Attempts int // placements tried before giving up
}

func (e *EndpointExhaustedError) Error() string {
	return fmt.Sprintf("workload: step %d: no fresh endpoints at distance %d after %d attempts",
		e.Step, e.Dist, e.Attempts)
}

// ChurnOp is one step of an RTR churn workload.
type ChurnOp struct {
	Route  bool // true = route the pair, false = unroute the net at Src
	Src    core.Pin
	Sink   core.Pin
	Serial int
}

// Churn produces a route/unroute sequence of the given length: each routed
// net is later unrouted with probability pUnroute per subsequent step,
// modelling an RTR system swapping connections at run time.
func (g *Gen) Churn(steps, dist int, pUnroute float64) ([]ChurnOp, error) {
	var ops []ChurnOp
	var live []ChurnOp
	liveSrc := map[core.Pin]bool{}
	liveSink := map[core.Pin]bool{}
	for i := 0; i < steps; i++ {
		if len(live) > 0 && g.Rng.Float64() < pUnroute {
			j := g.Rng.Intn(len(live))
			victim := live[j]
			ops = append(ops, ChurnOp{Route: false, Src: victim.Src, Serial: i})
			delete(liveSrc, victim.Src)
			delete(liveSink, victim.Sink)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		var src, sink core.Pin
		var err error
		for attempt := 1; ; attempt++ {
			src, sink, err = g.Pair(dist)
			if err != nil {
				return nil, err
			}
			if !liveSrc[src] && !liveSink[sink] {
				break
			}
			if attempt >= ChurnRetryLimit {
				return nil, &EndpointExhaustedError{Step: i, Dist: dist, Attempts: attempt}
			}
		}
		op := ChurnOp{Route: true, Src: src, Sink: sink, Serial: i}
		ops = append(ops, op)
		live = append(live, op)
		liveSrc[src] = true
		liveSink[sink] = true
	}
	return ops, nil
}

// FanNet is one multi-sink net of a replayable RTR workload: a source
// output pin and its sink input pins.
type FanNet struct {
	Src   core.Pin
	Sinks []core.Pin
}

// FanNets returns k fanout nets forming a stable working set: source tiles
// are distinct, every sink tile is distinct device-wide and distinct from
// all source tiles, and each sink lies within radius of its net's source.
// Because the nets never share endpoints, the set can be routed, unrouted,
// and re-routed in any order — the cache-hit-heavy churn pattern of the
// rtr_churn_cached workload.
func (g *Gen) FanNets(k, fan, radius int) ([]FanNet, error) {
	if k < 1 || fan < 1 {
		return nil, fmt.Errorf("workload: fan-net set %dx%d", k, fan)
	}
	usedTile := map[device.Coord]bool{}
	nets := make([]FanNet, 0, k)
	place := func(i int, pick func() (int, int)) (device.Coord, error) {
		for attempt := 1; attempt <= ChurnRetryLimit; attempt++ {
			tr, tc := pick()
			if tr < 0 || tr >= g.Rows || tc < 0 || tc >= g.Cols {
				continue
			}
			c := device.Coord{Row: tr, Col: tc}
			if usedTile[c] {
				continue
			}
			usedTile[c] = true
			return c, nil
		}
		return device.Coord{}, &EndpointExhaustedError{Step: i, Dist: radius, Attempts: ChurnRetryLimit}
	}
	for i := 0; i < k; i++ {
		st, err := place(i, func() (int, int) { return g.Rng.Intn(g.Rows), g.Rng.Intn(g.Cols) })
		if err != nil {
			return nil, err
		}
		net := FanNet{Src: g.randOutPin(st.Row, st.Col)}
		for s := 0; s < fan; s++ {
			sc, err := place(i, func() (int, int) {
				return st.Row + g.Rng.Intn(2*radius+1) - radius,
					st.Col + g.Rng.Intn(2*radius+1) - radius
			})
			if err != nil {
				return nil, err
			}
			net.Sinks = append(net.Sinks, g.randInPin(sc.Row, sc.Col))
		}
		nets = append(nets, net)
	}
	return nets, nil
}
