package workload

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/device"
)

func TestPairDistances(t *testing.T) {
	g := New(1, 16, 24)
	for _, dist := range []int{0, 1, 5, 12, 30} {
		for i := 0; i < 50; i++ {
			src, sink, err := g.Pair(dist)
			if err != nil {
				t.Fatalf("dist %d: %v", dist, err)
			}
			d := abs(src.Row-sink.Row) + abs(src.Col-sink.Col)
			if d != dist {
				t.Fatalf("pair distance %d, want %d", d, dist)
			}
			if arch.Wire(src.W) == arch.Invalid || arch.Wire(sink.W) == arch.Invalid {
				t.Fatal("invalid wires")
			}
		}
	}
	if _, _, err := g.Pair(1000); err == nil {
		t.Error("impossible distance accepted")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestPairDeterminism(t *testing.T) {
	a := New(7, 16, 24)
	b := New(7, 16, 24)
	for i := 0; i < 20; i++ {
		s1, k1, _ := a.Pair(5)
		s2, k2, _ := b.Pair(5)
		if s1 != s2 || k1 != k2 {
			t.Fatal("same seed, different sequences")
		}
	}
}

func TestFanout(t *testing.T) {
	g := New(2, 16, 24)
	src, sinks, err := g.Fanout(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 8 {
		t.Fatalf("%d sinks", len(sinks))
	}
	seen := map[device.Coord]bool{{Row: src.Row, Col: src.Col}: true}
	for _, s := range sinks {
		p := s.Pins()[0]
		c := device.Coord{Row: p.Row, Col: p.Col}
		if seen[c] {
			t.Error("duplicate sink tile")
		}
		seen[c] = true
		if abs(p.Row-src.Row) > 5 || abs(p.Col-src.Col) > 5 {
			t.Error("sink outside radius")
		}
	}
	if _, _, err := g.Fanout(0, 5); err == nil {
		t.Error("zero fanout accepted")
	}
	if _, _, err := g.Fanout(500, 1); err == nil {
		t.Error("impossible fanout accepted")
	}
}

func TestBus(t *testing.T) {
	g := New(3, 16, 24)
	srcs, dsts, err := g.Bus(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 8 || len(dsts) != 8 {
		t.Fatal("wrong width")
	}
	for i := range srcs {
		s := srcs[i].Pins()[0]
		d := dsts[i].Pins()[0]
		if d.Col-s.Col != 10 {
			t.Errorf("bit %d span %d", i, d.Col-s.Col)
		}
		if s.Row != d.Row {
			t.Errorf("bit %d rows differ", i)
		}
	}
	if _, _, err := g.Bus(99, 5); err == nil {
		t.Error("too-wide bus accepted")
	}
	if _, _, err := g.Bus(4, 99); err == nil {
		t.Error("too-long bus accepted")
	}
}

// TestClustered: the partition-bench workload — clusters land on a grid,
// stay inside their cells (so cluster bounding boxes never touch), keep
// every source track distinct within a cluster, and regenerate
// identically per seed.
func TestClustered(t *testing.T) {
	g := New(11, 64, 96)
	const clusters, per, spread = 6, 16, 7
	srcs, dsts, err := g.Clustered(clusters, per, spread)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != clusters*per || len(dsts) != clusters*per {
		t.Fatalf("%d/%d endpoints, want %d", len(srcs), len(dsts), clusters*per)
	}
	type key struct{ row, col, w int }
	seenSrc := map[key]bool{}
	for i := range srcs {
		s := srcs[i].Pins()[0]
		d := dsts[i].Pins()[0]
		k := key{s.Row, s.Col, int(s.W)}
		if seenSrc[k] {
			t.Fatalf("net %d: duplicate source track (%d,%d,%d)", i, s.Row, s.Col, s.W)
		}
		seenSrc[k] = true
		if d.Col-s.Col != spread || d.Row != s.Row {
			t.Errorf("net %d: sink offset (%d,%d), want (0,%d)", i, d.Row-s.Row, d.Col-s.Col, spread)
		}
	}
	// Same seed, same set.
	again, dstsAgain, err := New(11, 64, 96).Clustered(clusters, per, spread)
	if err != nil {
		t.Fatal(err)
	}
	for i := range srcs {
		if srcs[i].Pins()[0] != again[i].Pins()[0] || dsts[i].Pins()[0] != dstsAgain[i].Pins()[0] {
			t.Fatal("same seed, different clustered sets")
		}
	}
	// Validation: zero counts, zero spread, and too many clusters for the
	// array must all be rejected.
	if _, _, err := g.Clustered(0, 4, 3); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, _, err := g.Clustered(4, 0, 3); err == nil {
		t.Error("zero nets per cluster accepted")
	}
	if _, _, err := g.Clustered(4, 8, 0); err == nil {
		t.Error("zero spread accepted")
	}
	if _, _, err := New(12, 16, 24).Clustered(50, 8, 7); err == nil {
		t.Error("oversubscribed clustered set accepted")
	}
}

// TestClusteredRoutes: the clustered workload must actually route as a
// batch — it exists to drive the partitioned negotiator.
func TestClusteredRoutes(t *testing.T) {
	d, err := device.New(arch.NewVirtex(), 64, 96)
	if err != nil {
		t.Fatal(err)
	}
	g := ForDevice(13, d)
	srcs, dsts, err := g.Clustered(4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := core.New(d, core.WithParallelism(2))
	if err := r.RouteBusBatch(srcs, dsts); err != nil {
		t.Fatalf("clustered batch failed to route: %v", err)
	}
	if s := r.Stats(); s.PartitionRegions < 2 {
		t.Errorf("clustered workload produced %d partition regions", s.PartitionRegions)
	}
}

func TestChurnIsConsistent(t *testing.T) {
	g := New(4, 16, 24)
	ops, err := g.Churn(200, 6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 200 {
		t.Fatalf("%d ops", len(ops))
	}
	live := map[core.Pin]bool{}
	routes, unroutes := 0, 0
	for _, op := range ops {
		if op.Route {
			if live[op.Src] {
				t.Fatal("routed a live source twice")
			}
			live[op.Src] = true
			routes++
		} else {
			if !live[op.Src] {
				t.Fatal("unrouted a dead source")
			}
			delete(live, op.Src)
			unroutes++
		}
	}
	if routes == 0 || unroutes == 0 {
		t.Errorf("churn mix %d/%d", routes, unroutes)
	}
}

// TestChurnExecutes replays a churn workload against a real router: every
// op must apply cleanly.
func TestChurnExecutes(t *testing.T) {
	d, err := device.New(arch.NewVirtex(), 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	r := core.New(d)
	g := ForDevice(5, d)
	ops, err := g.Churn(120, 5, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Route {
			if err := r.RouteNet(op.Src, op.Sink); err != nil {
				t.Fatalf("op %d route: %v", op.Serial, err)
			}
		} else {
			if err := r.Unroute(op.Src); err != nil {
				t.Fatalf("op %d unroute: %v", op.Serial, err)
			}
		}
	}
}

// TestChurnEndpointExhausted: a tiny array with nothing ever unrouted runs
// out of fresh source pins; the generator must fail with the typed error
// carrying the retry budget it spent, not a bare formatted string.
func TestChurnEndpointExhausted(t *testing.T) {
	g := New(6, 2, 2)
	_, err := g.Churn(100, 1, 0)
	if err == nil {
		t.Fatal("exhausted churn succeeded")
	}
	var ee *EndpointExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("error %T %v, want *EndpointExhaustedError", err, err)
	}
	if ee.Attempts != ChurnRetryLimit {
		t.Errorf("Attempts = %d, want %d", ee.Attempts, ChurnRetryLimit)
	}
	if ee.Dist != 1 {
		t.Errorf("Dist = %d, want 1", ee.Dist)
	}
}

// TestFanNets: the rtr_churn_cached working set — distinct tiles
// device-wide, sinks within radius, deterministic per seed.
func TestFanNets(t *testing.T) {
	g := New(9, 16, 24)
	nets, err := g.FanNets(10, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 10 {
		t.Fatalf("%d nets", len(nets))
	}
	seen := map[device.Coord]bool{}
	for _, n := range nets {
		tiles := []core.Pin{n.Src}
		tiles = append(tiles, n.Sinks...)
		for _, p := range tiles {
			c := device.Coord{Row: p.Row, Col: p.Col}
			if seen[c] {
				t.Fatalf("tile (%d,%d) reused across the set", p.Row, p.Col)
			}
			seen[c] = true
		}
		if len(n.Sinks) != 3 {
			t.Errorf("net has %d sinks", len(n.Sinks))
		}
		for _, s := range n.Sinks {
			if abs(s.Row-n.Src.Row) > 6 || abs(s.Col-n.Src.Col) > 6 {
				t.Errorf("sink (%d,%d) outside radius of (%d,%d)", s.Row, s.Col, n.Src.Row, n.Src.Col)
			}
		}
	}
	// Same seed, same set.
	again, err := New(9, 16, 24).FanNets(10, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nets {
		if nets[i].Src != again[i].Src {
			t.Fatal("same seed, different sets")
		}
	}
	// Impossible set: more tiles than the array has.
	if _, err := New(1, 2, 2).FanNets(3, 2, 1); err == nil {
		t.Error("oversized fan-net set accepted")
	}
	if _, err := g.FanNets(0, 1, 1); err == nil {
		t.Error("zero nets accepted")
	}
}
